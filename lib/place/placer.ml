module Netlist = Gap_netlist.Netlist
module Rng = Gap_util.Rng
module Obs = Gap_obs.Obs
module Json = Gap_obs.Json

(* anneal move-cost deltas are signed um; net degrees are small ints *)
let move_delta_bounds_um =
  [|
    -1000.; -300.; -100.; -30.; -10.; -3.; -1.; 0.; 1.; 3.; 10.; 30.; 100.;
    300.; 1000.;
  |]

let net_degree_bounds =
  [| 1.; 2.; 3.; 4.; 6.; 8.; 12.; 16.; 24.; 32.; 48.; 64.; 96.; 128. |]

type options = {
  utilization : float;
  sweeps : int;
  seed : int64;
  net_weights : (int -> float) option;
}

let default_options =
  { utilization = 0.6; sweeps = 50; seed = 7L; net_weights = None }

type stats = {
  site_pitch_um : float;
  grid_side : int;
  initial_hpwl_um : float;
  final_hpwl_um : float;
  moves_accepted : int;
}

let die_side_um ?(utilization = 0.6) nl =
  sqrt (Netlist.area_um2 nl /. utilization)

(* Geometric cooling: the temperature decays from [t0] to
   [cooling_rate * t0] over the sweep schedule, i.e.
   T(sweep) = t0 * cooling_rate^(sweep / (sweeps - 1)).
   0.002 leaves the final sweeps effectively greedy (hill-climbing) while the
   early ones still accept sizeable uphill moves. *)
let cooling_rate = 0.002

(* The grid: side x side sites; slot s -> (x, y). Some slots are empty. *)
type grid = {
  pitch : float;
  side : int;
  slot_of_inst : int array;
  inst_of_slot : int array; (* -1 = empty *)
}

let slot_xy g s =
  let x = float_of_int (s mod g.side) *. g.pitch in
  let y = float_of_int (s / g.side) *. g.pitch in
  (x, y)

let commit nl g =
  Array.iteri
    (fun i s ->
      let x, y = slot_xy g s in
      Netlist.place nl i ~x_um:x ~y_um:y)
    g.slot_of_inst

let build_grid ~utilization ~rng ~random_init nl =
  let n = Netlist.num_instances nl in
  let avg_area = if n = 0 then 10. else Netlist.area_um2 nl /. float_of_int n in
  let pitch = sqrt avg_area in
  let side =
    let s = int_of_float (ceil (sqrt (float_of_int n /. utilization))) in
    max 1 s
  in
  let slots = side * side in
  let slot_of_inst = Array.make (max 1 n) 0 in
  let inst_of_slot = Array.make slots (-1) in
  let order = Array.init slots (fun s -> s) in
  if random_init then Rng.shuffle rng order;
  for i = 0 to n - 1 do
    let s = order.(i) in
    slot_of_inst.(i) <- s;
    inst_of_slot.(s) <- i
  done;
  { pitch; side; slot_of_inst; inst_of_slot }

(* Merge two sorted deduplicated id arrays into [out]; returns the length of
   the union. [out] must be large enough to hold it. *)
let merge_union a b out =
  let la = Array.length a and lb = Array.length b in
  let ka = ref 0 and kb = ref 0 and m = ref 0 in
  while !ka < la && !kb < lb do
    let x = a.(!ka) and y = b.(!kb) in
    let v =
      if x < y then begin incr ka; x end
      else if y < x then begin incr kb; y end
      else begin incr ka; incr kb; x end
    in
    out.(!m) <- v;
    incr m
  done;
  while !ka < la do
    out.(!m) <- a.(!ka);
    incr ka;
    incr m
  done;
  while !kb < lb do
    out.(!m) <- b.(!kb);
    incr kb;
    incr m
  done;
  !m

let anneal_body ~options nl =
  let rng = Rng.create ~seed:options.seed () in
  let g = build_grid ~utilization:options.utilization ~rng ~random_init:true nl in
  commit nl g;
  let weights = match options.net_weights with Some w -> w | None -> fun _ -> 1. in
  let n = Netlist.num_instances nl in
  if n = 0 then
    {
      site_pitch_um = g.pitch;
      grid_side = g.side;
      initial_hpwl_um = 0.;
      final_hpwl_um = 0.;
      moves_accepted = 0;
    }
  else begin
    let cache = Hpwl.Cache.create nl in
    let inst_nets = Array.init n (Hpwl.Cache.nets_of_instance cache) in
    let initial = Hpwl.total_um nl in
    let unweighted = Option.is_none options.net_weights in
    (* weighted cost, accumulated in net order exactly as a from-scratch sum.
       When no weight function is given every weight is 1.0 and multiplying
       by it cannot change any float, so the unweighted path skips the
       closure call entirely. *)
    let lens = Hpwl.Cache.lengths cache in
    let cost =
      ref
        (let acc = ref 0. in
         for net = 0 to Netlist.num_nets nl - 1 do
           let len = lens.(net) in
           acc := !acc +. (if unweighted then len else weights net *. len)
         done;
         !acc)
    in
    let accepted = ref 0 and proposed = ref 0 in
    let obs_on = Obs.enabled () in
    if obs_on then begin
      Obs.annotate
        [
          ("instances", Json.Int n);
          ("nets", Json.Int (Netlist.num_nets nl));
          ("sweeps", Json.Int options.sweeps);
          ("grid_side", Json.Int g.side);
        ];
      (* net degree histogram: pins per net, via the per-instance net sets *)
      let deg = Array.make (max 1 (Netlist.num_nets nl)) 0 in
      Array.iter
        (fun nets -> Array.iter (fun net -> deg.(net) <- deg.(net) + 1) nets)
        inst_nets;
      Array.iter
        (fun d ->
          if d > 0 then
            Obs.observe ~bounds:net_degree_bounds "place.net_degree"
              (float_of_int d))
        deg
    end;
    let slots = g.side * g.side in
    (* scratch buffer for the union of two instances' net sets *)
    let max_deg = Array.fold_left (fun acc a -> max acc (Array.length a)) 0 inst_nets in
    let affected = Array.make (max 1 (2 * max_deg)) 0 in
    let weighted_sum =
      if unweighted then fun m ->
        let acc = ref 0. in
        for k = 0 to m - 1 do
          acc := !acc +. lens.(affected.(k))
        done;
        !acc
      else fun m ->
        let acc = ref 0. in
        for k = 0 to m - 1 do
          let net = affected.(k) in
          acc := !acc +. (weights net *. lens.(net))
        done;
        !acc
    in
    (* move: pick an instance and a random slot; swap or shift *)
    let try_move temperature =
      let i = Rng.int rng n in
      let target = Rng.int rng slots in
      let src = g.slot_of_inst.(i) in
      if target <> src then begin
        incr proposed;
        let j = g.inst_of_slot.(target) in
        let m =
          if j >= 0 then merge_union inst_nets.(i) inst_nets.(j) affected
          else begin
            let a = inst_nets.(i) in
            Array.blit a 0 affected 0 (Array.length a);
            Array.length a
          end
        in
        let before = weighted_sum m in
        Hpwl.Cache.snapshot cache affected m;
        (* apply *)
        let apply_slot inst slot =
          g.slot_of_inst.(inst) <- slot;
          g.inst_of_slot.(slot) <- inst;
          (* same arithmetic as [slot_xy], inlined to skip the pair *)
          let x = float_of_int (slot mod g.side) *. g.pitch in
          let y = float_of_int (slot / g.side) *. g.pitch in
          Hpwl.Cache.move cache inst ~x_um:x ~y_um:y
        in
        g.inst_of_slot.(src) <- (-1);
        apply_slot i target;
        if j >= 0 then apply_slot j src;
        let after = weighted_sum m in
        let delta = after -. before in
        if obs_on then
          Obs.observe ~bounds:move_delta_bounds_um "place.move_delta_um" delta;
        let accept =
          delta <= 0.
          || temperature > 0.
             && Rng.float rng 1. < exp (-.delta /. temperature)
        in
        if accept then begin
          cost := !cost +. delta;
          incr accepted
        end
        else begin
          (* revert: restore the grid assignment, the mirrored coordinates
             (the slot arithmetic reproduces the old floats exactly), and the
             snapshotted net boxes — no inverse moves, no recomputes *)
          g.slot_of_inst.(i) <- src;
          g.inst_of_slot.(src) <- i;
          if j >= 0 then begin
            g.slot_of_inst.(j) <- target;
            g.inst_of_slot.(target) <- j
          end
          else g.inst_of_slot.(target) <- (-1);
          let sx = float_of_int (src mod g.side) *. g.pitch in
          let sy = float_of_int (src / g.side) *. g.pitch in
          Hpwl.Cache.set_xy cache i ~x_um:sx ~y_um:sy;
          if j >= 0 then begin
            let tx = float_of_int (target mod g.side) *. g.pitch in
            let ty = float_of_int (target / g.side) *. g.pitch in
            Hpwl.Cache.set_xy cache j ~x_um:tx ~y_um:ty
          end;
          Hpwl.Cache.rollback cache affected m
        end
      end
    in
    (* initial temperature: scale of one move's cost change *)
    let t0 = Float.max 1. (!cost /. float_of_int (max 1 n)) in
    let sweeps = max 1 options.sweeps in
    (* trajectory sampling: ~16 points over the schedule, plus the last sweep *)
    let sample_every = max 1 (sweeps / 16) in
    let last_accepted = ref 0 and last_proposed = ref 0 in
    (* best-so-far checkpoint, snapshotted at sweep boundaries: if a sweep
       dies (injected fault, cooperative deadline) the anneal degrades to
       this state instead of aborting the whole flow *)
    let best_cost = ref !cost in
    let best_slots = Array.copy g.slot_of_inst in
    let best_accepted = ref 0 in
    (try
       for sweep = 0 to sweeps - 1 do
         Gap_resilience.Fault.point "place.sweep";
         Gap_resilience.Supervisor.poll_deadline ~stage:"place.anneal";
         let temperature =
           t0 *. cooling_rate ** (float_of_int sweep /. float_of_int (max 1 (sweeps - 1)))
         in
         for _ = 1 to n do
           try_move temperature
         done;
         if !cost < !best_cost then begin
           best_cost := !cost;
           Array.blit g.slot_of_inst 0 best_slots 0 n;
           best_accepted := !accepted
         end;
         if obs_on && (sweep mod sample_every = 0 || sweep = sweeps - 1) then begin
           let window = !proposed - !last_proposed in
           let rate =
             if window = 0 then 0.
             else float_of_int (!accepted - !last_accepted) /. float_of_int window
           in
           Obs.event "place.sweep"
             [
               ("sweep", Json.Int sweep);
               ("temperature", Json.Float temperature);
               ("cost_um", Json.Float !cost);
               ("accept_rate", Json.Float rate);
               ("accepted", Json.Int !accepted);
             ];
           last_accepted := !accepted;
           last_proposed := !proposed
         end
       done
     with Gap_resilience.Stage_error.Stage_failure err ->
       (* graceful degradation: restore the checkpointed best assignment and
          finish with it; only typed failures are absorbed, real bugs
          (Invalid_argument and friends) still propagate *)
       Obs.incr "place.anneal_recoveries";
       Obs.event "place.recover"
         [
           ("error", Json.Str (Gap_resilience.Stage_error.to_string err));
           ("cost_um", Json.Float !best_cost);
         ];
       Array.blit best_slots 0 g.slot_of_inst 0 n;
       Array.fill g.inst_of_slot 0 slots (-1);
       Array.iteri (fun i s -> g.inst_of_slot.(s) <- i) g.slot_of_inst;
       accepted := !best_accepted);
    (* rejected moves leave netlist locations stale (rollback only restores
       the cache mirrors); write the final slot assignment back *)
    commit nl g;
    let final_hpwl = Hpwl.total_um nl in
    if obs_on then begin
      Obs.incr ~by:!proposed "place.moves_proposed";
      Obs.incr ~by:!accepted "place.moves_accepted";
      Obs.gauge "place.initial_hpwl_um" initial;
      Obs.gauge "place.final_hpwl_um" final_hpwl
    end;
    {
      site_pitch_um = g.pitch;
      grid_side = g.side;
      initial_hpwl_um = initial;
      final_hpwl_um = final_hpwl;
      moves_accepted = !accepted;
    }
  end

let anneal ?(options = default_options) nl =
  let r = Obs.span "place.anneal" (fun () -> anneal_body ~options nl) in
  Gap_netlist.Check.gate ~placed:true ~stage:"place.anneal" nl;
  r

let place ?options nl = anneal ?options nl

let place_random_body ~seed nl =
  let rng = Rng.create ~seed () in
  let g = build_grid ~utilization:default_options.utilization ~rng ~random_init:true nl in
  commit nl g;
  let h = Hpwl.total_um nl in
  {
    site_pitch_um = g.pitch;
    grid_side = g.side;
    initial_hpwl_um = h;
    final_hpwl_um = h;
    moves_accepted = 0;
  }

let place_random ?(seed = 11L) nl =
  let r = Obs.span "place.random" (fun () -> place_random_body ~seed nl) in
  Gap_netlist.Check.gate ~placed:true ~stage:"place.random" nl;
  r
