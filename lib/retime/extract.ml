module Netlist = Gap_netlist.Netlist
module Cell = Gap_liberty.Cell
module Digraph = Gap_util.Digraph

type t = { graph : Digraph.t; delays : float array; node_of_inst : int array }

(* Walk forward from a net through flop chains, yielding each combinational
   sink (or output port) with the number of registers passed. *)
let rec forward nl net regs ~on_sink =
  List.iter
    (fun sink ->
      match sink with
      | Netlist.To_output _ -> on_sink `Out regs
      | Netlist.To_pin (inst, _) ->
          if Netlist.is_flop nl inst then
            forward nl (Netlist.out_net nl inst) (regs + 1) ~on_sink
          else on_sink (`Inst inst) regs)
    (Netlist.sinks_of nl net)

(* The graph stores register counts as edge weights (as floats); node delays
   live in [delays]. Host = node 0; the environment clocks outputs, so
   output->host edges carry one register. *)
let of_netlist nl =
  let g = Digraph.create () in
  let host = Digraph.add_node g in
  assert (host = 0);
  let comb = Netlist.combinational_instances nl in
  let node_of_inst = Array.make (max 1 (Netlist.num_instances nl)) (-1) in
  let delays = ref [ 0. ] in
  List.iter
    (fun inst ->
      let cell = Netlist.cell_of nl inst in
      let onet = Netlist.out_net nl inst in
      let d =
        Cell.delay_ps cell ~load_ff:(Netlist.net_load_ff nl onet)
        +. Netlist.wire_delay_ps nl onet
      in
      node_of_inst.(inst) <- Digraph.add_node g;
      delays := d :: !delays)
    comb;
  let delays = Array.of_list (List.rev !delays) in
  let edge src dst regs = Digraph.add_edge g ~weight:(float_of_int regs) src dst in
  List.iter
    (fun inst ->
      forward nl (Netlist.out_net nl inst) 0 ~on_sink:(fun dst regs ->
          match dst with
          | `Out -> edge node_of_inst.(inst) host (regs + 1)
          | `Inst i -> edge node_of_inst.(inst) node_of_inst.(i) regs))
    comb;
  let from_source net =
    forward nl net 0 ~on_sink:(fun dst regs ->
        match dst with
        | `Out -> () (* pure wire-through, no timing node *)
        | `Inst i -> edge host node_of_inst.(i) regs)
  in
  for port = 0 to Netlist.num_inputs nl - 1 do
    from_source (Netlist.input_net nl port)
  done;
  for net = 0 to Netlist.num_nets nl - 1 do
    match Netlist.driver_of nl net with
    | Netlist.From_const _ -> from_source net
    | _ -> ()
  done;
  { graph = g; delays; node_of_inst }

let feasible t ~period_ps =
  (* violation <=> a cycle with sum(delay src) > P * sum(regs)
     <=> a negative cycle under edge weight (P * regs - delay src) *)
  let check = Digraph.create () in
  Digraph.add_nodes check (Digraph.node_count t.graph);
  for u = 0 to Digraph.node_count t.graph - 1 do
    List.iter
      (fun (v, regs) ->
        Digraph.add_edge check ~weight:((period_ps *. regs) -. t.delays.(u)) u v)
      (Digraph.succ t.graph u)
  done;
  Option.is_some (Digraph.feasible_potentials check)

let sta_period_ps nl = (Gap_sta.Sta.analyze nl).Gap_sta.Sta.min_period_ps

let retiming_bound_ps ?(epsilon = 0.5) nl =
  let t = of_netlist nl in
  let max_delay = Array.fold_left Float.max 0. t.delays in
  let hi0 = Float.max (sta_period_ps nl) max_delay in
  let lo = ref max_delay and hi = ref hi0 in
  (* the STA period is always feasible: every register-weighted cycle meets
     it by construction of the netlist timing *)
  if not (feasible t ~period_ps:!hi) then !hi
  else begin
    while !hi -. !lo > epsilon do
      let mid = (!lo +. !hi) /. 2. in
      if feasible t ~period_ps:mid then hi := mid else lo := mid
    done;
    !hi
  end

let retiming_headroom nl = sta_period_ps nl /. retiming_bound_ps nl
