module Netlist = Gap_netlist.Netlist
module Sta = Gap_sta.Sta
module Cell = Gap_liberty.Cell

type clocking = Edge_ff | Two_phase_latch of float

let window period = function
  | Edge_ff -> 0.
  | Two_phase_latch duty ->
      assert (duty > 0. && duty < 1.);
      duty *. period

let feasible ?(ring = false) ~stage_delays ~period clocking =
  let b = window period clocking in
  let n = Array.length stage_delays in
  assert (n >= 1);
  let propagate t0 =
    (* returns departure after the last stage, or None if any arrival misses
       its latch window *)
    let t = ref t0 in
    let ok = ref true in
    Array.iter
      (fun d ->
        let arrive = !t +. d -. period in
        if arrive > b +. 1e-9 then ok := false;
        t := Float.max 0. arrive)
      stage_delays;
    if !ok then Some !t else None
  in
  if not ring then Option.is_some (propagate 0.)
  else begin
    (* fixpoint around the loop: departures must be self-consistent *)
    let rec iterate t0 rounds =
      if rounds > n + 1 then false
      else
        match propagate t0 with
        | None -> false
        | Some t1 -> if t1 <= t0 +. 1e-9 then true else iterate t1 (rounds + 1)
    in
    iterate 0. 0
  end

let min_period ?(ring = false) ?(epsilon = 1e-3) ~stage_delays clocking =
  let total = Array.fold_left ( +. ) 0. stage_delays in
  let worst = Array.fold_left Float.max 0. stage_delays in
  let n = float_of_int (Array.length stage_delays) in
  (* bounds: never below the average (throughput), never above the worst
     stage (which is always feasible, even for flops) *)
  let lo = ref (Float.max 1e-9 (total /. n /. 2.)) and hi = ref (Float.max worst 1e-9) in
  while !hi -. !lo > epsilon do
    let mid = (!lo +. !hi) /. 2. in
    if feasible ~ring ~stage_delays ~period:mid clocking then hi := mid else lo := mid
  done;
  !hi

let borrowing_gain ?(ring = false) ~stage_delays ~duty () =
  let ff = min_period ~ring ~stage_delays Edge_ff in
  let latch = min_period ~ring ~stage_delays (Two_phase_latch duty) in
  ff /. latch

let stage_delays_of_pipeline nl ~config =
  let sta = Sta.analyze ~config nl in
  (* rank of each net: how many register ranks lie between the inputs and
     this net's driver *)
  let rank = Array.make (max 1 (Netlist.num_nets nl)) 0 in
  let flop_stage = Hashtbl.create 16 in
  let order = Netlist.topo_instances nl in
  (* flop Q nets must be ranked before their sinks; topo order covers comb
     paths, and flop ranks depend only on their D cone, so process flops by
     increasing D rank: iterate passes until stable (pipelines are shallow) *)
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun i ->
        if not (Netlist.is_flop nl i) then begin
          let fanins = Netlist.fanins_of nl i in
          let r = Array.fold_left (fun acc net -> max acc rank.(net)) 0 fanins in
          let onet = Netlist.out_net nl i in
          if rank.(onet) <> r then begin
            rank.(onet) <- r;
            changed := true
          end
        end)
      order;
    List.iter
      (fun f ->
        let d_net = (Netlist.fanins_of nl f).(0) in
        let stage = rank.(d_net) in
        (match Hashtbl.find_opt flop_stage f with
        | Some s when s = stage -> ()
        | _ ->
            Hashtbl.replace flop_stage f stage;
            changed := true);
        let q = Netlist.out_net nl f in
        if rank.(q) <> stage + 1 then begin
          rank.(q) <- stage + 1;
          changed := true
        end)
      (Netlist.flops nl)
  done;
  let n_stages =
    let m = ref 0 in
    Array.iter (fun r -> if r > !m then m := r) rank;
    !m + 1
  in
  let delays = Array.make n_stages 0. in
  (* flop endpoints: arrival at D + setup belongs to the flop's stage *)
  Hashtbl.iter
    (fun f stage ->
      let cell = Netlist.cell_of nl f in
      let setup =
        match Cell.seq_timing cell with Some s -> s.Cell.setup_ps | None -> 0.
      in
      let d_net = (Netlist.fanins_of nl f).(0) in
      let d = sta.Sta.arrival.(d_net) +. setup in
      if d > delays.(stage) then delays.(stage) <- d)
    flop_stage;
  (* primary-output endpoints belong to their net's stage *)
  for port = 0 to Netlist.num_outputs nl - 1 do
    let net = Netlist.output_net nl port in
    let stage = rank.(net) in
    if sta.Sta.arrival.(net) > delays.(stage) then delays.(stage) <- sta.Sta.arrival.(net)
  done;
  delays
