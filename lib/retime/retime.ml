type edge = { src : int; dst : int; w : int }

type t = {
  delays : float Gap_util.Vec.t;
  mutable edges : edge list;
}

exception Register_free_cycle of int list

let () =
  Printexc.register_printer (function
    | Register_free_cycle nodes ->
        Some
          (Printf.sprintf "Gap_retime.Retime.Register_free_cycle (%s)"
             (String.concat " -> " (List.map string_of_int nodes)))
    | _ -> None)

let create () = { delays = Gap_util.Vec.create (); edges = [] }

let add_node t ~delay =
  if not (delay >= 0.) then
    invalid_arg (Printf.sprintf "Retime.add_node: negative delay %g" delay);
  Gap_util.Vec.push t.delays delay

let add_edge t ~src ~dst ~regs =
  if regs < 0 then invalid_arg "Retime.add_edge: negative register count";
  let n = Gap_util.Vec.length t.delays in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg (Printf.sprintf "Retime.add_edge: node out of range (%d -> %d, %d nodes)" src dst n);
  t.edges <- { src; dst; w = regs } :: t.edges

let node_count t = Gap_util.Vec.length t.delays

let retimed_weight retiming e =
  match retiming with None -> e.w | Some r -> e.w + r.(e.dst) - r.(e.src)

let legal t r =
  List.for_all (fun e -> retimed_weight (Some r) e >= 0) t.edges

(* Longest register-free path: Delta(v) = d(v) + max over 0-weight incoming
   edges of Delta(src). Computed over the 0-weight subgraph topologically. *)
let deltas ?retiming t =
  let n = node_count t in
  let g = Gap_util.Digraph.create () in
  Gap_util.Digraph.add_nodes g n;
  List.iter
    (fun e ->
      let w = retimed_weight retiming e in
      if w < 0 then invalid_arg "Retime: negative retimed edge weight";
      if w = 0 then Gap_util.Digraph.add_edge g e.src e.dst)
    t.edges;
  match Gap_util.Digraph.longest_path g ~node_delay:(Gap_util.Vec.get t.delays) with
  | Some arr -> arr
  | None ->
      let cycle =
        match Gap_util.Digraph.find_cycle g with Some c -> c | None -> []
      in
      raise (Register_free_cycle cycle)

let well_formed t =
  match deltas t with _ -> true | exception Register_free_cycle _ -> false

let clock_period ?retiming t =
  let retiming = retiming in
  let d = deltas ?retiming t in
  Array.fold_left Float.max 0. d

let feasible t ~period =
  let n = node_count t in
  let r = Array.make n 0 in
  let ok = ref false in
  (* |V| - 1 FEAS iterations *)
  (try
     for _ = 1 to max 1 (n - 1) do
       let d = deltas ~retiming:r t in
       let any = ref false in
       Array.iteri
         (fun v dv ->
           if dv > period +. 1e-9 then begin
             r.(v) <- r.(v) + 1;
             any := true
           end)
         d;
       if not !any then raise Exit
     done
   with Exit -> ());
  (* final check *)
  (match deltas ~retiming:r t with
  | d -> if Array.for_all (fun dv -> dv <= period +. 1e-9) d && legal t r then ok := true
  | exception (Register_free_cycle _ | Invalid_argument _) -> ());
  if !ok then Some r else None

let min_period ?(epsilon = 1e-3) t =
  let upper = clock_period t in
  let lower =
    let acc = ref 0. in
    Gap_util.Vec.iter (fun d -> if d > !acc then acc := d) t.delays;
    !acc
  in
  let best = ref (upper, Array.make (node_count t) 0) in
  let lo = ref lower and hi = ref upper in
  while !hi -. !lo > epsilon do
    let mid = (!lo +. !hi) /. 2. in
    match feasible t ~period:mid with
    | Some r ->
        best := (clock_period ~retiming:r t, r);
        hi := mid
    | None -> lo := mid
  done;
  !best

let registers ?retiming t =
  List.fold_left (fun acc e -> acc + retimed_weight retiming e) 0 t.edges
