(** Leiserson-Saxe retiming: moving registers across logic to minimize the
    clock period without changing I/O behaviour.

    The circuit is a directed graph with a propagation delay per node and a
    register count per edge. A retiming assigns an integer lag [r(v)] to each
    node; edge weights become [w(e) + r(dst) - r(src)] and must stay
    non-negative. The achievable clock period is the longest register-free
    combinational path. Feasibility for a candidate period uses the classic
    FEAS iteration; the minimum period is found by binary search between the
    largest node delay and the unretimed period. *)

type t

exception Register_free_cycle of int list
(** A directed cycle with no register on any edge — no clock period exists.
    The payload is one witness cycle as node ids in edge order. *)

val create : unit -> t

val add_node : t -> delay:float -> int
(** Raises [Invalid_argument] on a negative delay. *)

val add_edge : t -> src:int -> dst:int -> regs:int -> unit
(** Raises [Invalid_argument] on a negative register count or out-of-range
    node id. *)

val node_count : t -> int

val well_formed : t -> bool
(** Every directed cycle carries at least one register (otherwise no clock
    period exists). *)

val clock_period : ?retiming:int array -> t -> float
(** Longest register-free path delay under the (default zero) retiming.
    Raises [Invalid_argument] if the retiming makes an edge weight negative,
    {!Register_free_cycle} (carrying the offending cycle) if a register-free
    cycle exists. *)

val legal : t -> int array -> bool
(** All retimed edge weights non-negative. *)

val feasible : t -> period:float -> int array option
(** FEAS: a legal retiming achieving [period], if one exists. *)

val min_period : ?epsilon:float -> t -> float * int array
(** Binary search over [feasible]; returns the best period found (within
    [epsilon], default 1e-3) and its retiming. *)

val registers : ?retiming:int array -> t -> int
(** Total registers on edges under a retiming. *)
