(** Monte Carlo fmax sampling over a variation model.

    Sampling is sharded: dies are drawn in fixed 1024-die blocks, each block
    from its own generator split off the master seed, and [domains] workers
    claim blocks off a shared counter. Because the block layout depends only
    on [dies], the resulting sample array is byte-identical for every
    [domains] value — parallelism changes wall-clock only, never results. *)

type run = {
  nominal_mhz : float;
  fmax_mhz : float array;  (** one entry per die, unsorted *)
  model : Model.t;
  mutable sorted : float array option;
      (** lazily cached ascending copy of [fmax_mhz]; managed by
          {!percentile}/{!fraction_above}, do not mutate *)
}

val simulate :
  ?seed:int64 ->
  ?domains:int ->
  model:Model.t ->
  nominal_mhz:float ->
  dies:int ->
  unit ->
  run
(** [domains] (default 1) is the number of Domains that sample in parallel;
    results are identical for any value.

    Resilience: every spawned domain is joined even when a worker raises,
    and the first error re-raises as a typed
    [Gap_resilience.Stage_error.Worker_failed]. A parallel run that fails
    this way (or hits an injected budget fault) degrades to a fresh
    sequential run with byte-identical samples; only if that also fails
    does the typed error propagate to the caller. *)

val percentile : run -> float -> float
(** Sorts the samples once on first use; repeated percentile queries are
    O(1) after that. *)

val mean : run -> float
val spread : run -> float
(** (p99 - p1) / p50: the visible speed spread of shipped parts. *)

val fraction_above : run -> float -> float
(** Yield at a frequency: fraction of dies at or above [mhz]. *)
