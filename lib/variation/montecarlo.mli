(** Monte Carlo fmax sampling over a variation model.

    Samples live in an unboxed float64 Bigarray
    ({!Gap_util.Stats.buf}): worker domains write disjoint flat-memory
    ranges directly, with no boxed [float array] and no per-sample
    allocation (each shard's standard normals are drawn in one batched
    {!Gap_util.Rng.normal_std_fill}).

    Sampling is sharded: dies are drawn in fixed 1024-die blocks, each
    block from its own generator split off the master seed, and [domains]
    workers claim *chunks* of up to 8 consecutive blocks off a shared
    counter — chunk-granularity claiming keeps the atomic counter off the
    hot path and every claim covers a contiguous, cache-line-aligned span
    of the buffer (chunks shrink on small runs so every worker still sees
    work to steal). Because the block layout depends only on [dies] — the
    chunk size steers only which worker writes which block — the resulting
    sample buffer is byte-identical for every [domains] value; parallelism
    changes wall-clock only, never results. *)

type run = {
  nominal_mhz : float;
  fmax_mhz : Gap_util.Stats.buf;  (** one entry per die, unsorted *)
  model : Model.t;
  mutable scratch : Gap_util.Stats.buf option;
      (** lazily created copy of [fmax_mhz] that percentile quickselects
          partially reorder in place; managed by {!percentile}/{!spread},
          do not mutate *)
}

val simulate :
  ?seed:int64 ->
  ?domains:int ->
  model:Model.t ->
  nominal_mhz:float ->
  dies:int ->
  unit ->
  run
(** [domains] (default 1) is the number of Domains that sample in parallel;
    results are identical for any value. [Invalid_argument] unless both
    [dies] and [domains] are positive.

    Observability: worker domains aggregate locally and flush once at join
    time — one batched [mc.shard_ns] histogram record per worker plus
    [mc.chunks_claimed] / [mc.worker_chunks] for work-stealing balance —
    instead of taking the recorder mutex per shard.

    Resilience: every spawned domain is joined even when a worker raises,
    and the first error re-raises as a typed
    [Gap_resilience.Stage_error.Worker_failed]. A parallel run that fails
    this way (or hits an injected budget fault) degrades to a fresh
    sequential run with byte-identical samples; only if that also fails
    does the typed error propagate to the caller. *)

val percentile : run -> float -> float
(** Streaming percentile by partial quickselect over a scratch copy of the
    samples — no full sort, expected O(dies) per query, and repeated
    queries get cheaper as earlier partitions accumulate. Returns exactly
    what sorting and interpolating would. *)

val mean : run -> float
val spread : run -> float
(** (p99 - p1) / p50: the visible speed spread of shipped parts. *)

val fraction_above : run -> float -> float
(** Yield at a frequency: fraction of dies at or above [mhz]; one pass
    over the unsorted buffer. *)
