let shrink_speed_gain ~linear_shrink =
  if not (linear_shrink >= 0. && linear_shrink < 1.) then
    invalid_arg
      (Printf.sprintf "Gap_variation.Maturity.shrink_speed_gain: shrink = %g outside [0,1)"
         linear_shrink);
  (* delay ~ Leff^1 directly, but a shrink also comes with oxide/Vt tuning;
     empirically (Intel 856) 5% shrink -> 18% speed: (1/0.95)^3.5 = 1.197 *)
  ((1. /. (1. -. linear_shrink)) ** 3.5) -. 1.

let initial_spread =
  (* shipped-part spread p5..p95 of the new-process distribution *)
  let s = Model.total_sigma Model.new_process in
  let lo = 1. -. (1.645 *. s) and hi = 1. +. (1.645 *. s) in
  (hi /. lo) -. 1.

let library_update_gain ~months =
  if not (months >= 0.) then
    invalid_arg
      (Printf.sprintf "Gap_variation.Maturity.library_update_gain: months = %g negative"
         months);
  0.20 *. (1. -. exp (-.months /. 9.))
