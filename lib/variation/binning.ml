type bins = { edges_mhz : float array; counts : int array }

let bin (run : Montecarlo.run) ~edges_mhz =
  let n_edges = Array.length edges_mhz in
  if n_edges < 1 then invalid_arg "Gap_variation.Binning.bin: no edges";
  for i = 1 to n_edges - 1 do
    if not (edges_mhz.(i) >= edges_mhz.(i - 1)) then
      invalid_arg
        (Printf.sprintf "Gap_variation.Binning.bin: edges not ascending at index %d" i)
  done;
  let counts = Array.make (n_edges + 1) 0 in
  let samples = run.Montecarlo.fmax_mhz in
  for d = 0 to Gap_util.Stats.buf_length samples - 1 do
    let f = Bigarray.Array1.unsafe_get samples d in
    (* index of the highest edge <= f, shifted by one; 0 = scrap *)
    let rec find i = if i >= 0 && edges_mhz.(i) <= f then i + 1 else if i < 0 then 0 else find (i - 1) in
    let idx = find (n_edges - 1) in
    counts.(idx) <- counts.(idx) + 1
  done;
  { edges_mhz; counts }

let yield_at run ~mhz = Montecarlo.fraction_above run mhz

let signoff_mhz (run : Montecarlo.run) =
  run.Montecarlo.nominal_mhz *. Model.signoff_speed run.Montecarlo.model

let typical_vs_signoff run = Montecarlo.percentile run 50. /. signoff_mhz run

let speed_test_gain run =
  (* sell each tested part at its own speed; compare the 85%-yield binned
     speed against the blanket worst-case rating *)
  Montecarlo.percentile run 15. /. signoff_mhz run

let top_bin_vs_typical run =
  Montecarlo.percentile run 99. /. Montecarlo.percentile run 50.

let custom_best_vs_asic_worst ~custom ~asic =
  Montecarlo.percentile custom 99. /. signoff_mhz asic

let fab_to_fab_span = (Model.best_fab /. Model.slow_fab) -. 1.
