module Obs = Gap_obs.Obs
module Stats = Gap_util.Stats

type run = {
  nominal_mhz : float;
  fmax_mhz : Stats.buf;
  model : Model.t;
  mutable scratch : Stats.buf option;
}

(* Dies are sampled in fixed-size shards, each from its own RNG split off the
   master seed in shard order. The shard layout depends only on [dies], never
   on [domains], so the sample buffer is byte-identical for any worker count.
   Workers claim work at *chunk* granularity — up to [max_chunk_shards]
   shards per claim — so the shared counter is touched an order of magnitude
   less often than a per-shard claim would, and each claim covers a
   contiguous cache-line-aligned span of the float64 buffer (one shard is
   8 KiB, a multiple of any line size), keeping false sharing off the write
   path. Chunk granularity affects only which worker writes which shard,
   never the values, so it may depend on [domains] freely. *)
let shard_size = 1024
let max_chunk_shards = 8

let simulate_body ~seed ~domains ~model ~nominal_mhz ~dies =
  Gap_resilience.Fault.point "mc.budget";
  Gap_resilience.Supervisor.poll_deadline ~stage:"mc.simulate";
  let master = Gap_util.Rng.create ~seed () in
  let num_shards = (dies + shard_size - 1) / shard_size in
  let workers = max 1 (min domains num_shards) in
  let chunk_shards =
    (* big enough to keep the shared counter off the hot path, small enough
       that every worker sees at least about two claims to steal *)
    max 1
      (min max_chunk_shards
         ((num_shards + (2 * workers) - 1) / (2 * workers)))
  in
  let num_chunks = (num_shards + chunk_shards - 1) / chunk_shards in
  let obs_on = Obs.enabled () in
  if obs_on then begin
    Obs.annotate
      [
        ("dies", Gap_obs.Json.Int dies);
        ("shards", Gap_obs.Json.Int num_shards);
        ("chunks", Gap_obs.Json.Int num_chunks);
        ("workers", Gap_obs.Json.Int workers);
      ];
    Obs.incr ~by:dies "mc.samples"
  end;
  let shard_rngs = Array.init num_shards (fun _ -> Gap_util.Rng.split master) in
  let fmax_mhz = Stats.buf_create dies in
  (* Per-worker state: a standard-normal scratch reused across shards and a
     local log of shard timings, flushed in one batched, mutex-protected
     observation at the end of the worker's run instead of taking the
     recorder lock once per shard. *)
  let run_shard ~z ~times ~n_times s =
    Gap_resilience.Supervisor.poll_deadline ~stage:"mc.simulate";
    let t0 = if obs_on then Obs.now_ns () else 0L in
    let lo = s * shard_size in
    let len = min shard_size (dies - lo) in
    (* [lo, lo+len) is within [0, dies) by construction *)
    Model.fill_fmax model shard_rngs.(s) ~z ~out:fmax_mhz ~pos:lo ~len
      ~nominal_mhz;
    if obs_on then begin
      times.(!n_times) <-
        Int64.to_float (Int64.sub (Obs.now_ns ()) t0);
      incr n_times
    end
  in
  let flush_worker_obs ~times ~n_times ~claimed =
    if obs_on then begin
      Obs.observe_batch "mc.shard_ns" (Array.sub times 0 !n_times);
      Obs.incr ~by:claimed "mc.chunks_claimed";
      Obs.observe "mc.worker_chunks" (float_of_int claimed)
    end
  in
  let run_chunk ~z ~times ~n_times c =
    let s_lo = c * chunk_shards in
    let s_hi = min num_shards (s_lo + chunk_shards) in
    for s = s_lo to s_hi - 1 do
      run_shard ~z ~times ~n_times s
    done
  in
  if workers = 1 then begin
    let z = Array.make (Model.draws_per_die * shard_size) 0. in
    let times = if obs_on then Array.make num_shards 0. else [||] in
    let n_times = ref 0 in
    for c = 0 to num_chunks - 1 do
      run_chunk ~z ~times ~n_times c
    done;
    flush_worker_obs ~times ~n_times ~claimed:num_chunks
  end
  else begin
    let next = Atomic.make 0 in
    let work ~fault_site () =
      (* the worker-death fault site lives only on the parallel path, so the
         sequential fallback in [simulate] replays the run cleanly *)
      if fault_site then Gap_resilience.Fault.point "mc.worker";
      let z = Array.make (Model.draws_per_die * shard_size) 0. in
      let times = if obs_on then Array.make num_shards 0. else [||] in
      let n_times = ref 0 in
      let claimed = ref 0 in
      let continue = ref true in
      while !continue do
        let c = Atomic.fetch_and_add next 1 in
        if c < num_chunks then begin
          incr claimed;
          run_chunk ~z ~times ~n_times c
        end
        else continue := false
      done;
      flush_worker_obs ~times ~n_times ~claimed:!claimed
    in
    let others =
      Array.init (workers - 1) (fun _ -> Domain.spawn (work ~fault_site:true))
    in
    (* Exception safety: every spawned domain is joined no matter what the
       main domain's share does, so a raising worker can neither leak nor
       park domains; the first error (main's first, then workers in spawn
       order) re-raises as a typed [Worker_failed]. *)
    let errs = ref [] in
    (match work ~fault_site:false () with
    | () -> ()
    | exception e -> errs := (0, e) :: !errs);
    Array.iteri
      (fun i d ->
        match Domain.join d with
        | () -> ()
        | exception e -> errs := (i + 1, e) :: !errs)
      others;
    match List.rev !errs with
    | [] -> ()
    | (worker, e) :: _ ->
        let error =
          match e with
          | Gap_resilience.Stage_error.Stage_failure err ->
              Gap_resilience.Stage_error.to_string err
          | e -> Printexc.to_string e
        in
        raise
          (Gap_resilience.Stage_error.Stage_failure
             (Gap_resilience.Stage_error.Worker_failed
                { stage = "mc.simulate"; worker; error }))
  end;
  { nominal_mhz; fmax_mhz; model; scratch = None }

let simulate ?(seed = 2024L) ?(domains = 1) ~model ~nominal_mhz ~dies () =
  if dies <= 0 then
    invalid_arg
      (Printf.sprintf "Gap_variation.Montecarlo.simulate: dies = %d (must be positive)" dies);
  if domains <= 0 then
    invalid_arg
      (Printf.sprintf "Gap_variation.Montecarlo.simulate: domains = %d (must be positive)"
         domains);
  Obs.span "mc.simulate" (fun () ->
      try simulate_body ~seed ~domains ~model ~nominal_mhz ~dies
      with Gap_resilience.Stage_error.Stage_failure err when domains > 1 ->
        (* Graceful degradation: worker death or budget pressure falls back
           to a fresh sequential run. The shard layout depends only on
           [dies], so the degraded run's samples are byte-identical to the
           parallel ones — parallelism is strictly a wall-clock matter. *)
        Obs.incr "mc.degraded_runs";
        Obs.event "mc.degrade"
          [
            ("error", Gap_obs.Json.Str (Gap_resilience.Stage_error.to_string err));
            ("domains", Gap_obs.Json.Int domains);
          ];
        simulate_body ~seed ~domains:1 ~model ~nominal_mhz ~dies)

(* Percentile queries select over a scratch copy of the sample buffer: the
   copy is made once per run (the original stays in sampling order for
   [fraction_above]/binning/economics scans) and each quickselect leaves it
   a little more ordered, so repeated queries keep getting cheaper without
   ever paying a full sort. *)
let scratch run =
  match run.scratch with
  | Some b ->
      Obs.incr "mc.percentile_cache.hit";
      b
  | None ->
      Obs.incr "mc.percentile_cache.miss";
      let b = Stats.buf_copy run.fmax_mhz in
      run.scratch <- Some b;
      b

let percentile run p = Stats.buf_percentile (scratch run) p
let mean run = Stats.buf_mean run.fmax_mhz

let spread run =
  (percentile run 99. -. percentile run 1.) /. percentile run 50.

let fraction_above run mhz =
  let n = Stats.buf_length run.fmax_mhz in
  float_of_int (Stats.buf_count_ge run.fmax_mhz mhz) /. float_of_int n
