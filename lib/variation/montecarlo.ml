module Obs = Gap_obs.Obs

type run = {
  nominal_mhz : float;
  fmax_mhz : float array;
  model : Model.t;
  mutable sorted : float array option;
}

(* Dies are sampled in fixed-size shards, each from its own RNG split off the
   master seed in shard order. The shard layout depends only on [dies], never
   on [domains], so the sample array is byte-identical for any worker count —
   workers just claim shards off a shared counter. *)
let shard_size = 1024

let simulate_body ~seed ~domains ~model ~nominal_mhz ~dies =
  Gap_resilience.Fault.point "mc.budget";
  Gap_resilience.Supervisor.poll_deadline ~stage:"mc.simulate";
  let master = Gap_util.Rng.create ~seed () in
  let num_shards = (dies + shard_size - 1) / shard_size in
  let workers = max 1 (min domains num_shards) in
  let obs_on = Obs.enabled () in
  if obs_on then begin
    Obs.annotate
      [
        ("dies", Gap_obs.Json.Int dies);
        ("shards", Gap_obs.Json.Int num_shards);
        ("workers", Gap_obs.Json.Int workers);
      ];
    Obs.incr ~by:dies "mc.samples"
  end;
  let shard_rngs = Array.init num_shards (fun _ -> Gap_util.Rng.split master) in
  let fmax_mhz = Array.make dies 0. in
  let run_shard s =
    Gap_resilience.Supervisor.poll_deadline ~stage:"mc.simulate";
    let t0 = if obs_on then Obs.now_ns () else 0L in
    let rng = shard_rngs.(s) in
    let lo = s * shard_size in
    let hi = min dies (lo + shard_size) in
    (* [lo, hi) is within [0, dies) by construction *)
    for d = lo to hi - 1 do
      Array.unsafe_set fmax_mhz d (nominal_mhz *. Model.sample_speed_factor model rng)
    done;
    (* the recorder is mutex-protected, so worker domains may observe *)
    if obs_on then
      Obs.observe "mc.shard_ns" (Int64.to_float (Int64.sub (Obs.now_ns ()) t0))
  in
  if workers = 1 then
    for s = 0 to num_shards - 1 do
      run_shard s
    done
  else begin
    let next = Atomic.make 0 in
    let work ~fault_site () =
      (* the worker-death fault site lives only on the parallel path, so the
         sequential fallback in [simulate] replays the run cleanly *)
      if fault_site then Gap_resilience.Fault.point "mc.worker";
      let continue = ref true in
      while !continue do
        let s = Atomic.fetch_and_add next 1 in
        if s < num_shards then run_shard s else continue := false
      done
    in
    let others =
      Array.init (workers - 1) (fun _ -> Domain.spawn (work ~fault_site:true))
    in
    (* Exception safety: every spawned domain is joined no matter what the
       main domain's share does, so a raising worker can neither leak nor
       park domains; the first error (main's first, then workers in spawn
       order) re-raises as a typed [Worker_failed]. *)
    let errs = ref [] in
    (match work ~fault_site:false () with
    | () -> ()
    | exception e -> errs := (0, e) :: !errs);
    Array.iteri
      (fun i d ->
        match Domain.join d with
        | () -> ()
        | exception e -> errs := (i + 1, e) :: !errs)
      others;
    match List.rev !errs with
    | [] -> ()
    | (worker, e) :: _ ->
        let error =
          match e with
          | Gap_resilience.Stage_error.Stage_failure err ->
              Gap_resilience.Stage_error.to_string err
          | e -> Printexc.to_string e
        in
        raise
          (Gap_resilience.Stage_error.Stage_failure
             (Gap_resilience.Stage_error.Worker_failed
                { stage = "mc.simulate"; worker; error }))
  end;
  { nominal_mhz; fmax_mhz; model; sorted = None }

let simulate ?(seed = 2024L) ?(domains = 1) ~model ~nominal_mhz ~dies () =
  assert (dies > 0);
  Obs.span "mc.simulate" (fun () ->
      try simulate_body ~seed ~domains ~model ~nominal_mhz ~dies
      with Gap_resilience.Stage_error.Stage_failure err when domains > 1 ->
        (* Graceful degradation: worker death or budget pressure falls back
           to a fresh sequential run. The shard layout depends only on
           [dies], so the degraded run's samples are byte-identical to the
           parallel ones — parallelism is strictly a wall-clock matter. *)
        Obs.incr "mc.degraded_runs";
        Obs.event "mc.degrade"
          [
            ("error", Gap_obs.Json.Str (Gap_resilience.Stage_error.to_string err));
            ("domains", Gap_obs.Json.Int domains);
          ];
        simulate_body ~seed ~domains:1 ~model ~nominal_mhz ~dies)

let sorted_samples run =
  match run.sorted with
  | Some s ->
      Obs.incr "mc.percentile_cache.hit";
      s
  | None ->
      Obs.incr "mc.percentile_cache.miss";
      let s = Array.copy run.fmax_mhz in
      Array.sort compare s;
      run.sorted <- Some s;
      s

let percentile run p = Gap_util.Stats.percentile_sorted (sorted_samples run) p
let mean run = Gap_util.Stats.mean_of run.fmax_mhz

let spread run =
  (percentile run 99. -. percentile run 1.) /. percentile run 50.

let fraction_above run mhz =
  (* first sorted index at or above [mhz], by binary search *)
  let s = sorted_samples run in
  let n = Array.length s in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if s.(mid) >= mhz then hi := mid else lo := mid + 1
  done;
  float_of_int (n - !lo) /. float_of_int n
