module Obs = Gap_obs.Obs

type run = {
  nominal_mhz : float;
  fmax_mhz : float array;
  model : Model.t;
  mutable sorted : float array option;
}

(* Dies are sampled in fixed-size shards, each from its own RNG split off the
   master seed in shard order. The shard layout depends only on [dies], never
   on [domains], so the sample array is byte-identical for any worker count —
   workers just claim shards off a shared counter. *)
let shard_size = 1024

let simulate_body ~seed ~domains ~model ~nominal_mhz ~dies =
  let master = Gap_util.Rng.create ~seed () in
  let num_shards = (dies + shard_size - 1) / shard_size in
  let workers = max 1 (min domains num_shards) in
  let obs_on = Obs.enabled () in
  if obs_on then begin
    Obs.annotate
      [
        ("dies", Gap_obs.Json.Int dies);
        ("shards", Gap_obs.Json.Int num_shards);
        ("workers", Gap_obs.Json.Int workers);
      ];
    Obs.incr ~by:dies "mc.samples"
  end;
  let shard_rngs = Array.init num_shards (fun _ -> Gap_util.Rng.split master) in
  let fmax_mhz = Array.make dies 0. in
  let run_shard s =
    let t0 = if obs_on then Obs.now_ns () else 0L in
    let rng = shard_rngs.(s) in
    let lo = s * shard_size in
    let hi = min dies (lo + shard_size) in
    (* [lo, hi) is within [0, dies) by construction *)
    for d = lo to hi - 1 do
      Array.unsafe_set fmax_mhz d (nominal_mhz *. Model.sample_speed_factor model rng)
    done;
    (* the recorder is mutex-protected, so worker domains may observe *)
    if obs_on then
      Obs.observe "mc.shard_ns" (Int64.to_float (Int64.sub (Obs.now_ns ()) t0))
  in
  if workers = 1 then
    for s = 0 to num_shards - 1 do
      run_shard s
    done
  else begin
    let next = Atomic.make 0 in
    let work () =
      let continue = ref true in
      while !continue do
        let s = Atomic.fetch_and_add next 1 in
        if s < num_shards then run_shard s else continue := false
      done
    in
    let others = Array.init (workers - 1) (fun _ -> Domain.spawn work) in
    work ();
    Array.iter Domain.join others
  end;
  { nominal_mhz; fmax_mhz; model; sorted = None }

let simulate ?(seed = 2024L) ?(domains = 1) ~model ~nominal_mhz ~dies () =
  assert (dies > 0);
  Obs.span "mc.simulate" (fun () ->
      simulate_body ~seed ~domains ~model ~nominal_mhz ~dies)

let sorted_samples run =
  match run.sorted with
  | Some s ->
      Obs.incr "mc.percentile_cache.hit";
      s
  | None ->
      Obs.incr "mc.percentile_cache.miss";
      let s = Array.copy run.fmax_mhz in
      Array.sort compare s;
      run.sorted <- Some s;
      s

let percentile run p = Gap_util.Stats.percentile_sorted (sorted_samples run) p
let mean run = Gap_util.Stats.mean_of run.fmax_mhz

let spread run =
  (percentile run 99. -. percentile run 1.) /. percentile run 50.

let fraction_above run mhz =
  (* first sorted index at or above [mhz], by binary search *)
  let s = sorted_samples run in
  let n = Array.length s in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if s.(mid) >= mhz then hi := mid else lo := mid + 1
  done;
  float_of_int (n - !lo) /. float_of_int n
