type sigmas = { lot : float; wafer : float; die : float; intra : float }

let mature = { lot = 0.035; wafer = 0.025; die = 0.04; intra = 0.03 }
let new_process = { lot = 0.05; wafer = 0.035; die = 0.06; intra = 0.045 }

let total_sigma s = sqrt ((s.lot *. s.lot) +. (s.wafer *. s.wafer) +. (s.die *. s.die))

type t = { sigmas : sigmas; fab_mean : float }

let make ?(fab_mean = 1.0) sigmas = { sigmas; fab_mean }

let sample_speed_factor t rng =
  let s = t.sigmas in
  let g sigma = Gap_util.Rng.normal rng ~mean:0. ~sigma in
  let dtd = 1. +. g s.lot +. g s.wafer +. g s.die in
  let intra_penalty = Float.abs (g s.intra) in
  Float.max 0.05 (t.fab_mean *. dtd *. (1. -. intra_penalty))

(* one die consumes four standard normals: lot, wafer, die, intra *)
let draws_per_die = 4

let fill_fmax t rng ~z ~out ~pos ~len ~nominal_mhz =
  let draws = draws_per_die * len in
  if Array.length z < draws then
    invalid_arg
      (Printf.sprintf
         "Gap_variation.Model.fill_fmax: z scratch holds %d of %d draws"
         (Array.length z) draws);
  if pos < 0 || len < 0 || pos + len > Gap_util.Stats.buf_length out then
    invalid_arg "Gap_variation.Model.fill_fmax: range outside output buffer";
  Gap_util.Rng.normal_std_fill rng z ~pos:0 ~len:draws;
  let s = t.sigmas in
  for i = 0 to len - 1 do
    let base = draws_per_die * i in
    (* draw order matches [sample_speed_factor]: its [+.] operands evaluate
       right to left, so the stream yields die, wafer, lot, then intra *)
    let zd = Array.unsafe_get z base in
    let zw = Array.unsafe_get z (base + 1) in
    let zl = Array.unsafe_get z (base + 2) in
    let zi = Array.unsafe_get z (base + 3) in
    let dtd = 1. +. (s.lot *. zl) +. (s.wafer *. zw) +. (s.die *. zd) in
    let intra_penalty = Float.abs (s.intra *. zi) in
    let f = Float.max 0.05 (t.fab_mean *. dtd *. (1. -. intra_penalty)) in
    Bigarray.Array1.unsafe_set out (pos + i) (nominal_mhz *. f)
  done

let best_fab = 1.05
let typical_fab = 1.0
let slow_fab = 0.85
let voltage_temp_derate = 0.85
let worst_case_sigma_count = 3.0

let signoff_speed t =
  t.fab_mean *. (1. -. (worst_case_sigma_count *. total_sigma t.sigmas)) *. voltage_temp_derate
