module Netlist = Gap_netlist.Netlist
module Sta = Gap_sta.Sta
module Cell = Gap_liberty.Cell

type run = { nominal_ps : float; periods_ps : float array; sigma_cell : float }

let simulate ?(seed = 51L) ?(samples = 200) ?(config = Sta.default_config) ~sigma_cell nl =
  if not (sigma_cell >= 0. && sigma_cell < 0.5) then
    invalid_arg
      (Printf.sprintf "Gap_variation.Ssta.simulate: sigma_cell = %g outside [0, 0.5)"
         sigma_cell);
  let rng = Gap_util.Rng.create ~seed () in
  let nominal = (Sta.analyze ~config nl).Sta.min_period_ps in
  (* stash the pre-existing wire delays so we can restore them *)
  let saved = Array.init (Netlist.num_nets nl) (Netlist.wire_delay_ps nl) in
  let comb = Netlist.combinational_instances nl in
  let ncomb = List.length comb in
  (* one standard normal per combinational instance per sample, drawn in a
     single batched fill — the per-instance stream is identical to scalar
     [normal ~mean:1.0 ~sigma:sigma_cell] draws in instance order *)
  let z = Array.make (max 1 ncomb) 0. in
  let periods =
    Array.init samples (fun _ ->
        Gap_util.Rng.normal_std_fill rng z ~pos:0 ~len:ncomb;
        List.iteri
          (fun k inst ->
            let cell = Netlist.cell_of nl inst in
            let onet = Netlist.out_net nl inst in
            let load = Netlist.net_load_ff nl onet in
            let d = Cell.delay_ps cell ~load_ff:load in
            let factor =
              Float.max 0.5 (1.0 +. (sigma_cell *. Array.unsafe_get z k))
            in
            (* model the variation as extra (possibly negative) wire delay on
               the cell's output, leaving cell data intact *)
            Netlist.set_wire_delay_ps nl onet (saved.(onet) +. ((factor -. 1.) *. d)))
          comb;
        (Sta.analyze ~config nl).Sta.min_period_ps)
  in
  Array.iteri (fun net d -> Netlist.set_wire_delay_ps nl net d) saved;
  { nominal_ps = nominal; periods_ps = periods; sigma_cell }

let mean_period_ps r = Gap_util.Stats.mean_of r.periods_ps
let sigma_period_ps r = Gap_util.Stats.stddev_of r.periods_ps
let mean_shift r = (mean_period_ps r -. r.nominal_ps) /. r.nominal_ps
let relative_sigma r = sigma_period_ps r /. mean_period_ps r
