(** Hierarchical process-variation model.

    Chip speed varies at several spatial scales (Sec. 8.1.1: "line-to-line;
    wafer-to-wafer; die-to-die, and intra-die"). We model the maximum
    frequency of a die as

    [fmax = nominal x fab_mean x (1 + lot + wafer + die) x (1 - intra_penalty)]

    with [lot], [wafer], [die] independent zero-mean Gaussians and the
    intra-die term a half-normal penalty (the critical path samples the worst
    of many on-die paths, so within-die spread only ever hurts).

    Sigma presets are calibrated against the spreads the paper reports:
    a {e new} process shows a 30-40% end-to-end spread in shipped parts
    (Intel's first 0.18um parts spanned 533-733 MHz), a {e mature} one
    roughly half that. *)

type sigmas = {
  lot : float;
  wafer : float;
  die : float;
  intra : float;
}

val mature : sigmas
val new_process : sigmas
val total_sigma : sigmas -> float
(** RSS of the die-to-die components (excluding intra). *)

type t = {
  sigmas : sigmas;
  fab_mean : float;  (** fab line's mean speed relative to nominal *)
}

val make : ?fab_mean:float -> sigmas -> t

val sample_speed_factor : t -> Gap_util.Rng.t -> float
(** Multiplicative fmax factor for one die; always positive. *)

val draws_per_die : int
(** Standard normals one die consumes (lot, wafer, die, intra), i.e. the
    per-die stride of the [z] scratch passed to {!fill_fmax}. *)

val fill_fmax :
  t ->
  Gap_util.Rng.t ->
  z:float array ->
  out:Gap_util.Stats.buf ->
  pos:int ->
  len:int ->
  nominal_mhz:float ->
  unit
(** [fill_fmax t rng ~z ~out ~pos ~len ~nominal_mhz] writes
    [nominal_mhz x speed-factor] for [len] dies into
    [out.{pos .. pos+len-1}] — bit-identical to [len] successive
    [nominal_mhz *. sample_speed_factor t rng] evaluations, but the
    standard normals are drawn in one batched {!Gap_util.Rng.normal_std_fill}
    into the caller's [z] scratch (length >= [draws_per_die * len]), so the
    hot loop allocates nothing. *)

(** {1 Fab accessibility (Sec. 8.1.2)} *)

val best_fab : float
(** Mean speed of the best available fab line: +5%. *)

val typical_fab : float

val slow_fab : float
(** The "worse fabrication plants" an ASIC may be committed to: -15%
    (the paper's 20-25% fab-to-fab span is [best_fab/slow_fab]). *)

(** {1 Signoff derating (Sec. 8.2)} *)

val voltage_temp_derate : float
(** Worst-case voltage/temperature corner factor applied on top of process
    slow corner when a library quotes "worst case" delay: 0.85. *)

val worst_case_sigma_count : float
(** Process corner distance used by library characterization: 3 sigma. *)

val signoff_speed : t -> float
(** The worst-case speed an ASIC library would quote on this fab line:
    [fab_mean x (1 - k sigma) x derate]. *)
