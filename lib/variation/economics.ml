type pricing = { base_price : float; price_slope : float; die_cost : float }

let default_pricing = { base_price = 10.; price_slope = 2.0; die_cost = 3.0 }

let price_at p ~nominal_mhz ~mhz =
  let rel = (mhz -. nominal_mhz) /. nominal_mhz in
  Float.max (0.2 *. p.base_price) (p.base_price *. (1. +. (p.price_slope *. rel)))

type strategy_result = {
  strategy : string;
  revenue_per_die : float;
  sold_fraction : float;
  rating_mhz : float;
}

let single_rating p (run : Montecarlo.run) ~rating_mhz =
  let nominal_mhz = run.Montecarlo.nominal_mhz in
  let price = price_at p ~nominal_mhz ~mhz:rating_mhz in
  let n = Gap_util.Stats.buf_length run.Montecarlo.fmax_mhz in
  let sold = Gap_util.Stats.buf_count_ge run.Montecarlo.fmax_mhz rating_mhz in
  let frac = float_of_int sold /. float_of_int n in
  {
    strategy = Printf.sprintf "single rating @ %.0f MHz" rating_mhz;
    revenue_per_die = (frac *. price) -. p.die_cost;
    sold_fraction = frac;
    rating_mhz;
  }

let binned p (run : Montecarlo.run) ~edges_mhz =
  if Array.length edges_mhz < 1 then
    invalid_arg "Gap_variation.Economics.binned: no edges";
  let nominal_mhz = run.Montecarlo.nominal_mhz in
  let samples = run.Montecarlo.fmax_mhz in
  let n = Gap_util.Stats.buf_length samples in
  let revenue = ref 0. and sold = ref 0 in
  for d = 0 to n - 1 do
    let f = Bigarray.Array1.unsafe_get samples d in
    (* highest edge this die meets *)
    let best = ref None in
    Array.iter (fun e -> if f >= e then best := Some e) edges_mhz;
    match !best with
    | Some e ->
        revenue := !revenue +. price_at p ~nominal_mhz ~mhz:e;
        incr sold
    | None -> ()
  done;
  {
    strategy =
      Printf.sprintf "speed-binned (%d bins from %.0f MHz)" (Array.length edges_mhz)
        edges_mhz.(0);
    revenue_per_die = (!revenue /. float_of_int n) -. p.die_cost;
    sold_fraction = float_of_int !sold /. float_of_int n;
    rating_mhz = edges_mhz.(0);
  }

let die_yield ~area_mm2 ~defects_per_cm2 =
  if not (area_mm2 >= 0. && defects_per_cm2 >= 0.) then
    invalid_arg "Gap_variation.Economics.die_yield: negative area or defect density";
  let alpha = 2. in
  let ad = area_mm2 /. 100. *. defects_per_cm2 in
  (1. +. (ad /. alpha)) ** -.alpha

let best_single_rating p run ~candidates =
  if Array.length candidates < 1 then
    invalid_arg "Gap_variation.Economics.best_single_rating: no candidates";
  Array.fold_left
    (fun best rating ->
      let r = single_rating p run ~rating_mhz:rating in
      if r.revenue_per_die > best.revenue_per_die then r else best)
    (single_rating p run ~rating_mhz:candidates.(0))
    candidates
