type variant = Logic | Logic_dsp | Logic_memory | Logic_memory_dsp

type ratios = {
  area : float;
  freq : float;
  dynamic_power : float;
}

(* Kuon & Rose's measured FPGA/ASIC gaps (the Charm `fpga2asic` constants,
   SNIPPETS.md): 90nm Stratix II vs standard-cell ASIC at the same node.
   Area and dynamic power are FPGA/ASIC (bigger is worse for the FPGA);
   frequency is ASIC/FPGA. Dynamic power is compared with both parts at the
   same clock, i.e. a switched-capacitance ratio; FPGA static power is
   excluded. Hard DSP and memory blocks narrow the gaps because their
   silicon is ASIC-like on both sides. *)
let ratios = function
  | Logic -> { area = 35.; freq = 3.4; dynamic_power = 14. }
  | Logic_dsp -> { area = 25.; freq = 3.5; dynamic_power = 12. }
  | Logic_memory -> { area = 33.; freq = 3.5; dynamic_power = 14. }
  | Logic_memory_dsp -> { area = 18.; freq = 3.0; dynamic_power = 7.1 }

let all = [ Logic; Logic_dsp; Logic_memory; Logic_memory_dsp ]

let variant_name = function
  | Logic -> "logic"
  | Logic_dsp -> "logic-dsp"
  | Logic_memory -> "logic-memory"
  | Logic_memory_dsp -> "logic-memory-dsp"

let variant_of_name = function
  | "logic" -> Some Logic
  | "logic-dsp" -> Some Logic_dsp
  | "logic-memory" -> Some Logic_memory
  | "logic-memory-dsp" -> Some Logic_memory_dsp
  | _ -> None

let pp ppf v =
  let r = ratios v in
  Format.fprintf ppf "%s: area x%.0f, freq x%.1f, dyn power x%.1f"
    (variant_name v) r.area r.freq r.dynamic_power
