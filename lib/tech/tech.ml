type interconnect = Aluminum | Copper

type t = {
  name : string;
  drawn_um : float;
  leff_um : float;
  vdd_v : float;
  interconnect : interconnect;
  wire_r_kohm_per_um : float;
  wire_c_ff_per_um : float;
  metal_layers : int;
}

let fo4_ps t = 500. *. t.leff_um
let tau_ps t = fo4_ps t /. 5.

(* Global-layer wire parasitics. Aluminum at 0.25um: ~0.12 ohm/um and
   ~0.25 fF/um for a minimum-pitch global wire; copper at 0.18um is about
   40% less resistive. These feed the Elmore/repeater models; only ratios
   matter for the paper's claims. *)

let asic_025um =
  {
    name = "0.25um ASIC (Al)";
    drawn_um = 0.25;
    leff_um = 0.18;
    vdd_v = 2.5;
    interconnect = Aluminum;
    wire_r_kohm_per_um = 0.12e-3;
    wire_c_ff_per_um = 0.25;
    metal_layers = 5;
  }

let custom_025um =
  {
    name = "0.25um custom (Al)";
    drawn_um = 0.25;
    leff_um = 0.15;
    vdd_v = 1.8;
    interconnect = Aluminum;
    wire_r_kohm_per_um = 0.12e-3;
    wire_c_ff_per_um = 0.25;
    metal_layers = 6;
  }

let asic_018um =
  {
    name = "0.18um ASIC (Cu, CMOS7SF)";
    drawn_um = 0.18;
    leff_um = 0.11;
    vdd_v = 1.8;
    interconnect = Copper;
    wire_r_kohm_per_um = 0.07e-3;
    wire_c_ff_per_um = 0.23;
    metal_layers = 6;
  }

let custom_018um =
  {
    name = "0.18um custom (Cu, CMOS7S)";
    drawn_um = 0.18;
    leff_um = 0.12;
    vdd_v = 1.8;
    interconnect = Copper;
    wire_r_kohm_per_um = 0.07e-3;
    wire_c_ff_per_um = 0.23;
    metal_layers = 6;
  }

let asic_035um =
  {
    name = "0.35um ASIC (Al)";
    drawn_um = 0.35;
    leff_um = 0.25;
    vdd_v = 3.3;
    interconnect = Aluminum;
    wire_r_kohm_per_um = 0.09e-3;
    wire_c_ff_per_um = 0.27;
    metal_layers = 4;
  }

let fpga_025um =
  (* An island-style FPGA fabric on the same 0.25um process frame as
     [asic_025um]: identical transistors and wire parasitics, so every
     FPGA/ASIC ratio measured against it is a pure architecture gap (LUTs,
     configuration overhead, programmable routing) with the process
     cancelled — the same-node comparison the Charm fpga2asic data makes.
     Fabrics carry more metal for the programmable interconnect. *)
  {
    name = "0.25um FPGA fabric (Al)";
    drawn_um = 0.25;
    leff_um = 0.18;
    vdd_v = 2.5;
    interconnect = Aluminum;
    wire_r_kohm_per_um = 0.12e-3;
    wire_c_ff_per_um = 0.25;
    metal_layers = 6;
  }

let all_presets =
  [ asic_035um; asic_025um; custom_025um; asic_018um; custom_018um; fpga_025um ]

let pp ppf t =
  Format.fprintf ppf "%s: Leff %.2fum, FO4 %.0f ps, Vdd %.1f V, %s, %d metal"
    t.name t.leff_um (fo4_ps t) t.vdd_v
    (match t.interconnect with Aluminum -> "Al" | Copper -> "Cu")
    t.metal_layers
