(** The Charm [fpga2asic] empirical FPGA/ASIC gap model (Kuon & Rose,
    "Measuring the gap between FPGAs and ASICs", 90nm Stratix II data; see
    SNIPPETS.md).

    These constants are the calibration targets for {!Gap_fpga}'s fabric
    model and the scaling applied to FPGA-backend points in [Gap_dse.Eval];
    keeping them here — below both libraries in the dependency graph —
    makes them the single source of truth. *)

type variant =
  | Logic  (** soft logic only: the headline x35 / x3.4 / x14 gaps *)
  | Logic_dsp  (** designs using hard multiplier/DSP blocks *)
  | Logic_memory  (** designs using hard block RAM *)
  | Logic_memory_dsp  (** both hard block families in use *)

type ratios = {
  area : float;  (** FPGA area / ASIC area *)
  freq : float;  (** ASIC fmax / FPGA fmax *)
  dynamic_power : float;
      (** FPGA / ASIC dynamic power with both at the same clock — a
          switched-capacitance ratio; FPGA static power excluded *)
}

val ratios : variant -> ratios
val all : variant list
val variant_name : variant -> string
val variant_of_name : string -> variant option
val pp : Format.formatter -> variant -> unit
