(** Process-technology descriptions.

    A technology here is what the paper means by one: a fabrication process
    with given design rules, effective channel length, and interconnect stack
    ("aluminum interconnect for the 0.25um technology considered", Sec. 2).
    All delay modeling is normalized through the FO4 rule of thumb the paper
    uses: FO4 delay [ns] = 0.5 x Leff [um]. *)

type interconnect = Aluminum | Copper

type t = {
  name : string;
  drawn_um : float;  (** drawn (marketing) feature size, e.g. 0.25 *)
  leff_um : float;  (** effective transistor channel length *)
  vdd_v : float;
  interconnect : interconnect;
  wire_r_kohm_per_um : float;  (** global-layer wire resistance *)
  wire_c_ff_per_um : float;  (** global-layer wire capacitance *)
  metal_layers : int;
}

val fo4_ps : t -> float
(** Fanout-of-4 inverter delay from the 0.5 ns/um rule: [500. *. leff_um]. *)

val tau_ps : t -> float
(** Logical-effort time unit: FO4 = (p_inv + 4 g_inv) tau = 5 tau. *)

(** {1 Presets}

    The processes the paper compares. ASIC and custom variants of the same
    0.25um node differ in effective channel length: ASIC libraries were
    characterized at Leff ~ 0.18um while aggressive custom processes reached
    0.15um (paper footnotes 1-2). *)

val asic_025um : t
(** Typical 0.25um ASIC process: Leff 0.18um, FO4 90 ps, aluminum. *)

val custom_025um : t
(** High-speed custom 0.25um process (IBM 1 GHz PowerPC): Leff 0.15um,
    FO4 75 ps. *)

val asic_018um : t
(** IBM CMOS7SF SA-27E-class 0.18um ASIC process: Leff 0.11um, copper. *)

val custom_018um : t
(** IBM CMOS7S 0.18um: Leff 0.12um, FO4 55 ps (paper Sec. 8.3). *)

val asic_035um : t
(** Previous-generation 0.35um ASIC process, for scaling comparisons. *)

val fpga_025um : t
(** Island-style FPGA fabric on the same process frame as {!asic_025um}
    (identical Leff, Vdd, wire parasitics), so FPGA/ASIC comparisons against
    it isolate the architecture gap the way the Charm same-node data does;
    see {!Charm} and [Gap_fpga.Fabric]. *)

val all_presets : t list

val pp : Format.formatter -> t -> unit
