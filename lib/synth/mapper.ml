module Aig = Gap_logic.Aig
module Tt = Gap_logic.Truthtable
module Npn = Gap_logic.Npn
module Cell = Gap_liberty.Cell
module Library = Gap_liberty.Library
module Netlist = Gap_netlist.Netlist

type mode = Delay | Area

type choice = {
  cut : Cuts.cut;
  cell : Cell.t;
  tf : Npn.transform;
}

type node_best = {
  mutable arrival : float;
  mutable area_flow : float;
  mutable choice : choice option;
}

(* Average X1 input capacitance: the load estimate unit. *)
let avg_cin lib =
  let cells = Library.cells lib in
  let sum = ref 0. and n = ref 0 in
  Array.iter
    (fun (c : Cell.t) ->
      if c.kind = Comb && c.drive <= 1. then begin
        sum := !sum +. c.input_cap_ff;
        incr n
      end)
    cells;
  if !n = 0 then 2.5 else !sum /. float_of_int !n

(* A mid-size inverter used for negations during matching. *)
let mapping_inverter lib =
  match Library.inverters lib with
  | [] -> failwith "Mapper: library has no inverter"
  | invs ->
      let target = 2. in
      List.fold_left
        (fun best (c : Cell.t) ->
          if Float.abs (c.Cell.drive -. target) < Float.abs (best.Cell.drive -. target)
          then c
          else best)
        (List.hd invs) invs

type ctx = {
  lib : Library.t;
  g : Aig.t;
  mode : mode;
  cuts : Cuts.cut list array;
  best : node_best array;
  fanout : int array;
  load_override : float array option;
      (* realized loads from a previous mapping pass, per AIG node *)
  cin : float;
  r_est_kohm : float;
      (* typical driver resistance: charges a candidate cell's input
         capacitance back onto the (not-yet-chosen) leaf drivers, so the DP
         does not pick huge-cin cells that would slow their fanins *)
  inv : Cell.t;
  (* transform cache keyed by (cut function bits, cell name) *)
  match_cache : (int64 * string, Npn.transform option) Hashtbl.t;
}

let load_estimate ctx id =
  match ctx.load_override with
  | Some loads when loads.(id) > 0. -> loads.(id)
  | _ -> float_of_int (max 1 ctx.fanout.(id)) *. ctx.cin
let inv_delay ctx = Cell.delay_ps ctx.inv ~load_ff:ctx.cin

let cached_match ctx ~target ~(cell : Cell.t) =
  let key = (Tt.bits target, cell.name) in
  match Hashtbl.find_opt ctx.match_cache key with
  | Some r -> r
  | None ->
      let r = Npn.best_match ~target ~candidate:cell.func in
      Hashtbl.replace ctx.match_cache key r;
      r

let leaf_cost ctx leaf negated =
  let b = ctx.best.(leaf) in
  let arr = b.arrival +. if negated then inv_delay ctx else 0. in
  let af = b.area_flow +. if negated then ctx.inv.Cell.area_um2 else 0. in
  (arr, af)

let evaluate_choice ctx id (cut : Cuts.cut) (cell : Cell.t) tf =
  let input_load_penalty = ctx.r_est_kohm *. cell.Cell.input_cap_ff in
  let worst_arr = ref 0. and area_acc = ref 0. in
  Array.iteri
    (fun leaf_idx leaf ->
      let negated = tf.Npn.input_neg land (1 lsl leaf_idx) <> 0 in
      let arr, af = leaf_cost ctx leaf negated in
      let arr = arr +. input_load_penalty in
      if arr > !worst_arr then worst_arr := arr;
      area_acc := !area_acc +. af)
    cut.leaves;
  let gate_delay = Cell.delay_ps cell ~load_ff:(load_estimate ctx id) in
  let out_inv = if tf.Npn.output_neg then inv_delay ctx else 0. in
  let arrival = !worst_arr +. gate_delay +. out_inv in
  let raw_area =
    cell.Cell.area_um2
    +. (if tf.Npn.output_neg then ctx.inv.Cell.area_um2 else 0.)
    +. !area_acc
  in
  let area_flow = raw_area /. float_of_int (max 1 ctx.fanout.(id)) in
  (arrival, area_flow)

let better ctx (arr1, af1) (arr2, af2) =
  match ctx.mode with
  | Delay -> arr1 < arr2 -. 1e-9 || (Float.abs (arr1 -. arr2) <= 1e-9 && af1 < af2)
  | Area -> af1 < af2 -. 1e-9 || (Float.abs (af1 -. af2) <= 1e-9 && arr1 < arr2)

let compute_best ctx =
  let n = Aig.num_nodes ctx.g in
  for id = 0 to n - 1 do
    if Aig.is_and ctx.g id then begin
      let b = ctx.best.(id) in
      List.iter
        (fun (cut : Cuts.cut) ->
          (* The trivial cut {id} is not implementable. *)
          if not (Cuts.size cut = 1 && cut.leaves.(0) = id) then begin
            let f = Cuts.cut_function ctx.g id cut in
            let candidates = Library.cells_matching ctx.lib f in
            List.iter
              (fun (cell : Cell.t) ->
                match cached_match ctx ~target:f ~cell with
                | None -> ()
                | Some tf ->
                    let arr, af = evaluate_choice ctx id cut cell tf in
                    if Option.is_none b.choice
                       || better ctx (arr, af) (b.arrival, b.area_flow)
                    then begin
                      b.arrival <- arr;
                      b.area_flow <- af;
                      b.choice <- Some { cut; cell; tf }
                    end)
              candidates
          end)
        ctx.cuts.(id);
      if Option.is_none b.choice then
        failwith
          (Printf.sprintf "Mapper: no library match for node %d (library %s)" id
             (Library.name ctx.lib))
    end
  done

let make_ctx ?load_override ~lib ~mode g =
  let cuts = Cuts.enumerate g in
  let n = Aig.num_nodes g in
  let best =
    Array.init n (fun _ -> { arrival = 0.; area_flow = 0.; choice = None })
  in
  let ctx =
    {
      lib;
      g;
      mode;
      cuts;
      best;
      fanout = Aig.fanout_counts g;
      load_override;
      cin = avg_cin lib;
      r_est_kohm = (mapping_inverter lib).Cell.drive_res_kohm;
      inv = mapping_inverter lib;
      match_cache = Hashtbl.create 1024;
    }
  in
  compute_best ctx;
  ctx

let estimated_arrival_ps ~lib ?(mode = Delay) g =
  let ctx = make_ctx ~lib ~mode g in
  Array.fold_left
    (fun acc (_, l) ->
      let id = Aig.id_of_lit l in
      let b = ctx.best.(id) in
      let a = b.arrival +. if Aig.is_compl l then inv_delay ctx else 0. in
      Float.max acc a)
    0. (Aig.outputs g)

let cover ctx ?name () =
  let nl_name = Option.value ~default:"mapped" name in
  let nl = Netlist.create ~lib:ctx.lib nl_name in
  let input_nets =
    Array.map (fun (pname, _) -> Netlist.add_input nl pname) (Aig.inputs ctx.g)
  in
  let const0 = lazy (Netlist.add_const nl false) in
  let node_net : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let inv_net : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let rec materialize id =
    match Hashtbl.find_opt node_net id with
    | Some net -> net
    | None ->
        let net =
          if id = 0 then Lazy.force const0
          else
            match Aig.input_index ctx.g id with
            | Some pos -> input_nets.(pos)
            | None -> (
                match ctx.best.(id).choice with
                | None -> failwith "Mapper: unmapped node reached"
                | Some { cut; cell; tf } ->
                    let fanin_nets =
                      Array.init cell.Cell.n_inputs (fun cell_pin ->
                          let leaf_idx = tf.Npn.perm.(cell_pin) in
                          let leaf = cut.leaves.(leaf_idx) in
                          let negated = tf.Npn.input_neg land (1 lsl leaf_idx) <> 0 in
                          let leaf_net = materialize leaf in
                          if negated then inverted leaf_net else leaf_net)
                    in
                    let inst = Netlist.add_cell nl cell fanin_nets in
                    let out = Netlist.out_net nl inst in
                    if tf.Npn.output_neg then inverted out else out)
        in
        Hashtbl.replace node_net id net;
        net
  and inverted net =
    match Hashtbl.find_opt inv_net net with
    | Some n -> n
    | None ->
        let inst = Netlist.add_cell nl ctx.inv [| net |] in
        let out = Netlist.out_net nl inst in
        Hashtbl.replace inv_net net out;
        out
  in
  Array.iter
    (fun (oname, l) ->
      let id = Aig.id_of_lit l in
      let net = materialize id in
      let net = if Aig.is_compl l then inverted net else net in
      ignore (Netlist.set_output nl oname net))
    (Aig.outputs ctx.g);
  (nl, node_net)

let map_aig ~lib ?(mode = Delay) ?(passes = 1) ?name g =
  assert (passes >= 1);
  let rec go pass load_override =
    let ctx = make_ctx ?load_override ~lib ~mode g in
    let nl, node_net = cover ctx ?name () in
    if pass >= passes then nl
    else begin
      (* feed the realized loads of this cover back into the next DP pass,
         damped against the structural estimate to avoid oscillation *)
      let loads = Array.make (Aig.num_nodes g) 0. in
      Hashtbl.iter
        (fun id net ->
          let est = load_estimate ctx id in
          loads.(id) <- 0.5 *. (Netlist.net_load_ff nl net +. est))
        node_net;
      go (pass + 1) (Some loads)
    end
  in
  go 1 None
