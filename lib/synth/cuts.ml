module Aig = Gap_logic.Aig
module Tt = Gap_logic.Truthtable

type cut = { leaves : int array }

let trivial n = { leaves = [| n |] }
let size c = Array.length c.leaves

let merge k a b =
  (* merge two sorted leaf arrays, failing fast when exceeding k *)
  let la = Array.length a.leaves and lb = Array.length b.leaves in
  let out = Array.make (la + lb) 0 in
  let rec go i j n =
    if n > k then None
    else if i = la && j = lb then begin
      Some { leaves = Array.sub out 0 n }
    end
    else if i = la then begin
      out.(n) <- b.leaves.(j);
      go i (j + 1) (n + 1)
    end
    else if j = lb then begin
      out.(n) <- a.leaves.(i);
      go (i + 1) j (n + 1)
    end
    else begin
      let x = a.leaves.(i) and y = b.leaves.(j) in
      if x = y then begin
        out.(n) <- x;
        go (i + 1) (j + 1) (n + 1)
      end
      else if x < y then begin
        out.(n) <- x;
        go (i + 1) j (n + 1)
      end
      else begin
        out.(n) <- y;
        go i (j + 1) (n + 1)
      end
    end
  in
  go 0 0 0

let subset a b =
  (* both sorted *)
  let la = Array.length a and lb = Array.length b in
  let rec go i j =
    if i = la then true
    else if j = lb then false
    else if a.(i) = b.(j) then go (i + 1) (j + 1)
    else if a.(i) > b.(j) then go i (j + 1)
    else false
  in
  la <= lb && go 0 0

let dominated c existing = List.exists (fun e -> subset e.leaves c.leaves) existing

let insert_cut per_node cuts c =
  if dominated c cuts then cuts
  else begin
    let survivors = List.filter (fun e -> not (subset c.leaves e.leaves)) cuts in
    let cuts = c :: survivors in
    if List.length cuts <= per_node then cuts
    else begin
      (* Drop the largest cut beyond the budget (trivial cut is size 1 and
         thus always survives). *)
      let sorted = List.sort (fun a b -> Int.compare (size a) (size b)) cuts in
      let rec take n = function
        | [] -> []
        | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
      in
      take per_node sorted
    end
  end

let enumerate ?(k = 4) ?(per_node = 10) g =
  let n = Aig.num_nodes g in
  let cuts = Array.make n [] in
  for id = 0 to n - 1 do
    if Aig.is_and g id then begin
      let a, b = Aig.fanins g id in
      let ia = Aig.id_of_lit a and ib = Aig.id_of_lit b in
      let acc = ref [ trivial id ] in
      List.iter
        (fun ca ->
          List.iter
            (fun cb ->
              match merge k ca cb with
              | Some c -> acc := insert_cut per_node !acc c
              | None -> ())
            cuts.(ib))
        cuts.(ia);
      cuts.(id) <- !acc
    end
    else cuts.(id) <- [ trivial id ]
  done;
  cuts

let cut_function g root cut =
  let vars = Array.length cut.leaves in
  assert (vars >= 1 && vars <= 4);
  let leaf_index = Hashtbl.create 8 in
  Array.iteri (fun i leaf -> Hashtbl.replace leaf_index leaf i) cut.leaves;
  let memo = Hashtbl.create 64 in
  let rec of_node id =
    match Hashtbl.find_opt memo id with
    | Some tt -> tt
    | None ->
        let tt =
          match Hashtbl.find_opt leaf_index id with
          | Some i -> Tt.var ~vars i
          | None ->
              if id = 0 then Tt.const_false ~vars
              else if Aig.is_input g id then
                failwith "Cuts.cut_function: cut does not cover root"
              else begin
                let a, b = Aig.fanins g id in
                Tt.logand (of_lit a) (of_lit b)
              end
        in
        Hashtbl.replace memo id tt;
        tt
  and of_lit l =
    let tt = of_node (Aig.id_of_lit l) in
    if Aig.is_compl l then Tt.lognot tt else tt
  in
  of_node root
