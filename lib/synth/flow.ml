module Obs = Gap_obs.Obs
module Check = Gap_netlist.Check
module Fault = Gap_resilience.Fault
module Supervisor = Gap_resilience.Supervisor

type effort = {
  balance : bool;
  mode : Mapper.mode;
  buffer_max_fanout : int option;
  tilos_moves : int;
  sta_config : Gap_sta.Sta.config;
}

let default_effort =
  {
    balance = true;
    mode = Mapper.Delay;
    buffer_max_fanout = Some 8;
    tilos_moves = 2000;
    sta_config = Gap_sta.Sta.default_config;
  }

let low_effort =
  {
    balance = false;
    mode = Mapper.Area;
    buffer_max_fanout = None;
    tilos_moves = 0;
    sta_config = Gap_sta.Sta.default_config;
  }

type outcome = {
  netlist : Gap_netlist.Netlist.t;
  sta : Gap_sta.Sta.t;
  sizing : Sizing.result option;
  buffers_inserted : int;
}

let run ~lib ?(effort = default_effort) ?name g =
  Obs.span "synth.flow" (fun () ->
      let g =
        if effort.balance then Obs.span "synth.balance" (fun () -> Balance.balance g)
        else g
      in
      (* Mapping is pure (it builds a fresh netlist from the AIG each call),
         so a transient failure is safely retried; the fault point fires at
         stage entry, before any state exists. *)
      let netlist =
        Supervisor.retry ~stage:"synth.map" (fun () ->
            Obs.span "synth.map" (fun () ->
                Fault.point "synth.map";
                Mapper.map_aig ~lib ~mode:effort.mode ?name g))
      in
      Check.gate ~stage:"synth.map" netlist;
      let buffers_inserted =
        match effort.buffer_max_fanout with
        | Some max_fanout ->
            Obs.span "synth.buffer" (fun () ->
                Buffering.buffer_fanout ~max_fanout netlist)
        | None -> 0
      in
      Obs.incr ~by:buffers_inserted "synth.buffers_inserted";
      Check.gate ~stage:"synth.buffer" netlist;
      (* Sizing mutates the netlist incrementally, so only entry failures
         (the fault point, a transient setup error) are retryable; once
         TILOS starts moving sizes an escaping error propagates typed. *)
      let sizing =
        if effort.tilos_moves > 0 then
          Some
            (Supervisor.retry ~stage:"synth.sizing" (fun () ->
                 Obs.span "synth.sizing" (fun () ->
                     Fault.point "synth.sizing";
                     Sizing.tilos ~config:effort.sta_config
                       ~max_moves:effort.tilos_moves netlist)))
        else None
      in
      (match sizing with
      | Some s ->
          Obs.incr ~by:s.Sizing.moves "synth.sizing_moves";
          Check.gate ~stage:"synth.sizing" netlist
      | None -> ());
      let sta =
        Supervisor.retry ~stage:"synth.sta" (fun () ->
            Obs.span "synth.sta" (fun () ->
                Gap_sta.Sta.analyze ~config:effort.sta_config netlist))
      in
      { netlist; sta; sizing; buffers_inserted })
