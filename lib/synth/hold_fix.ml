module Netlist = Gap_netlist.Netlist
module Cell = Gap_liberty.Cell
module Library = Gap_liberty.Library
module Hold = Gap_sta.Hold

type result = {
  buffers_inserted : int;
  area_added_um2 : float;
  iterations : int;
  clean : bool;
}

let delay_cells lib =
  match Library.buffers lib with
  | b :: _ -> [ b ]
  | [] -> (
      match Library.inverters lib with
      | i :: _ -> [ i; i ] (* pair keeps polarity *)
      | [] -> failwith "Hold_fix: library has neither buffers nor inverters")

let fix_body ~skew_ps ~max_iterations nl =
  let lib = Netlist.lib nl in
  let cells = delay_cells lib in
  let unit_delay =
    List.fold_left (fun acc (c : Cell.t) -> acc +. c.Cell.intrinsic_ps) 0. cells
  in
  let unit_area =
    List.fold_left (fun acc (c : Cell.t) -> acc +. c.Cell.area_um2) 0. cells
  in
  let inserted = ref 0 and area = ref 0. in
  let pad_pin ~inst ~pin units =
    for _ = 1 to units do
      List.iter
        (fun cell ->
          let net = (Netlist.fanins_of nl inst).(pin) in
          let buf = Netlist.add_cell nl cell [| net |] in
          Netlist.rewire_pin nl ~inst ~pin (Netlist.out_net nl buf);
          incr inserted;
          area := !area +. cell.Cell.area_um2)
        cells
    done;
    ignore unit_area
  in
  let rec loop iter =
    let h = Hold.analyze ~skew_ps nl in
    match h.Hold.violations with
    | [] -> (iter, true)
    | violations when iter >= max_iterations -> (iter, violations = [])
    | violations ->
        List.iter
          (fun (v : Hold.violation) ->
            let units =
              int_of_float (ceil (-.v.Hold.slack_ps /. Float.max 1. unit_delay))
            in
            pad_pin ~inst:v.Hold.flop ~pin:0 (max 1 units))
          violations;
        loop (iter + 1)
  in
  let iterations, clean = loop 0 in
  let r = { buffers_inserted = !inserted; area_added_um2 = !area; iterations; clean } in
  Gap_obs.Obs.incr ~by:r.buffers_inserted "synth.hold_buffers_inserted";
  r

let fix ?(skew_ps = 0.) ?(max_iterations = 10) nl =
  let r =
    Gap_obs.Obs.span "synth.hold_fix" (fun () -> fix_body ~skew_ps ~max_iterations nl)
  in
  Gap_netlist.Check.gate ~stage:"synth.hold_fix" nl;
  r
