.PHONY: build test check faults chaos sweep report bench-diff serve-bench e11 verify repro bench bench-kernels metrics clean

build:
	dune build

test:
	dune runtest

# Design-rule checks: gate every experiment flow at its stage boundaries and
# fail on any Error-severity diagnostic; the JSON report must validate.
check:
	dune exec bin/repro.exe -- check --strict --json CHECK_diagnostics.json
	dune exec bin/repro.exe -- validate-json CHECK_diagnostics.json

# Deterministic fault-injection campaign: every registered fault site is
# injected at least once and must recover, degrade, or fail with a typed
# diagnostic — never silently and never with an uncaught exception. The
# JSON report must validate.
faults:
	dune exec bin/repro.exe -- faults --json FAULTS_report.json
	dune exec bin/repro.exe -- validate-json FAULTS_report.json

# Serve chaos campaign: SIGKILL the daemon mid-workload and at every
# registered fault site, truncate a segment store at every byte offset,
# flip bytes before the recoverable tail, interrupt a JSON migration,
# disconnect / stall / flood clients — then assert the store validates and
# a warm restart answers byte-identically to a never-killed evaluator.
# The exit status IS the gate (any failed scenario or uncovered catalog
# site is non-ok), and the JSON report must validate.
chaos:
	dune exec bin/repro.exe -- chaos serve --json FAULTS_serve.json
	dune exec bin/repro.exe -- validate-json FAULTS_serve.json

# Design-space sweep, cold then warm: the first pass fills the result cache
# from scratch, the second must serve every point from the store (hit rate
# 1.0, enforced) and produce a byte-identical table; the sweep document with
# cache accounting lands in BENCH_sweep.json and must validate. The store is
# an append-only checksummed segment directory (see Gap_dse.Segstore).
sweep:
	dune exec bin/repro.exe -- cache clear --store BENCH_dse_cache.store
	dune exec bin/repro.exe -- sweep smoke --domains 2 --store BENCH_dse_cache.store
	dune exec bin/repro.exe -- sweep smoke --domains 2 --store BENCH_dse_cache.store \
	  --min-hit-rate 0.99 --json BENCH_sweep.json
	dune exec bin/repro.exe -- validate-json BENCH_sweep.json

# Trace analysis: record a traced run, analyze it (self-time attribution,
# top-K spans, critical path), export to Chrome/Perfetto trace-event format,
# and validate both the analysis document and the export as strict JSON.
report:
	dune exec bin/repro.exe -- run E4 E6 E9 --trace BENCH_trace.jsonl
	dune exec bin/repro.exe -- report BENCH_trace.jsonl --json BENCH_report.json
	dune exec bin/repro.exe -- validate-json BENCH_report.json
	dune exec bin/repro.exe -- export-trace BENCH_trace.jsonl -o BENCH_trace.chrome.json
	dune exec bin/repro.exe -- validate-json BENCH_trace.chrome.json

# Kernel regression gating: append a host-tagged hot-kernel snapshot to the
# BENCH_history.jsonl store, then diff against the previous entry and fail
# on any metric more than 50% slower (normalized by the entries' host
# calibration numbers). With fewer than two entries the diff passes
# trivially, so a fresh clone bootstraps its own baseline.
bench-diff:
	dune exec bench/main.exe -- --kernels-json BENCH_kernels.json --history BENCH_history.jsonl
	dune exec bin/repro.exe -- report --diff prev last --history BENCH_history.jsonl --gate 50

# Multi-client daemon load test: an in-process server driven by 256
# concurrent connections (synchronized waves on shared points plus
# per-client unique points). Writes latency percentiles, throughput, and
# the server's coalesce/cache counters to BENCH_serve.json (with the host
# meta block) and appends a snapshot to the serve history store — kept
# separate from BENCH_history.jsonl so the kernel diff's prev/last
# semantics stay clean. Fails unless at least 25% of contended requests
# coalesced onto an in-flight evaluation (the structural floor is far
# higher; the slack absorbs scheduling noise on slow hosts).
serve-bench:
	dune exec bin/repro.exe -- bench serve --clients 256 --waves 8 --unique 2 \
	  --json BENCH_serve.json --history BENCH_serve_history.jsonl \
	  --min-coalesce-rate 0.25
	dune exec bin/repro.exe -- validate-json BENCH_serve.json

# Three-way FPGA/ASIC/custom gap measurement (E11): implement every Charm
# variant's fixture suite through both technology backends, gate the
# measured area/frequency/dynamic-power ratios on the Charm constants
# (exit status IS the gate), write the measurement document with factor
# products to BENCH_e11.json, and render the pipeline-stage-resolved slack
# table from the run's metrics.
e11:
	dune exec bin/repro.exe -- fpga-gap --json BENCH_e11.json \
	  --metrics-json BENCH_e11_metrics.json
	dune exec bin/repro.exe -- validate-json BENCH_e11.json
	dune exec bin/repro.exe -- report --by-stage BENCH_e11_metrics.json

# The default verification path: build, full test suite, strict lint gates,
# fault campaign, serve chaos campaign, cold/warm design-space sweep, trace
# analysis + Perfetto export, kernel history gating, daemon load test,
# Charm-gated FPGA measurement.
verify: build test check faults chaos sweep report bench-diff serve-bench e11

repro:
	dune exec bin/repro.exe -- all -x

bench:
	dune exec bench/main.exe

# Quick Bechamel pass over the hot kernels (STA, annealing placement,
# Monte Carlo at 1/2/4 domains, percentile-heavy MC); writes ns/run with
# embedded pre-optimization baselines and speedups to BENCH_kernels.json.
bench-kernels:
	dune exec bench/main.exe -- --quick --kernels-json BENCH_kernels.json

# Run the paper's ten experiments with telemetry on and collect every span,
# counter and histogram into BENCH_metrics.json; fails if the file is not
# well-formed JSON.
metrics:
	dune exec bin/repro.exe -- run E1 E2 E3 E4 E5 E6 E7 E8 E9 E10 \
	  --metrics-json BENCH_metrics.json
	dune exec bin/repro.exe -- validate-json BENCH_metrics.json

clean:
	dune clean
