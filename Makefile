.PHONY: build test repro bench bench-kernels clean

build:
	dune build

test:
	dune runtest

repro:
	dune exec bin/repro.exe -- all -x

bench:
	dune exec bench/main.exe

# Quick Bechamel pass over the hot kernels (STA, annealing placement,
# Monte Carlo at 1/2/4 domains, percentile-heavy MC); writes ns/run with
# embedded pre-optimization baselines and speedups to BENCH_kernels.json.
bench-kernels:
	dune exec bench/main.exe -- --quick --kernels-json BENCH_kernels.json

clean:
	dune clean
