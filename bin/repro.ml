(* repro: command-line driver for the paper reproduction.

   repro list            enumerate experiments (E1..E10 + extensions X1..X3)
   repro run E3 X1       run selected experiments
   repro all             run everything and print the summary
   repro resume FILE     continue a checkpointed campaign (repro all --checkpoint)
   repro faults          deterministic fault-injection campaign over every site
   repro analysis        print the core gap analysis (factor table etc.)
   repro dump cla16      synthesize a named circuit and emit structural Verilog
   repro sweep PRESET    design-space sweep through the result cache + worker pool
   repro pareto          Pareto frontier over (delay, area, power) with the gap composite
   repro cache stats     inspect / reset the persistent DSE result cache
   repro report TRACE    analyze a JSONL trace: self-time, top-K, critical path
   repro report --diff A B   cross-run regression diff over the history store
   repro export-trace    convert a JSONL trace to Chrome/Perfetto format *)

open Cmdliner

(* --- observability plumbing: --trace / --metrics-json / --obs-summary /
   --obs-csv install a recording sink around the run; with none of them the
   ambient sink stays the no-op and instrumented code is branch-cheap --- *)

type obs_opts = {
  trace : string option;
  metrics_json : string option;
  obs_summary : bool;
  obs_csv : string option;
  history : string option;
  history_label : string;
}

let obs_term =
  let trace =
    Arg.(value & opt (some string) None
        & info [ "trace" ] ~docv:"FILE"
            ~doc:"Stream a JSONL telemetry trace (one JSON object per span/event) to $(docv).")
  in
  let metrics =
    Arg.(value & opt (some string) None
        & info [ "metrics-json" ] ~docv:"FILE"
            ~doc:"Write the aggregated metrics document (spans, counters, gauges, histograms) to $(docv) as JSON.")
  in
  let summary =
    Arg.(value & flag
        & info [ "obs-summary" ] ~doc:"Print the telemetry summary tables after the run.")
  in
  let csv =
    Arg.(value & opt (some string) None
        & info [ "obs-csv" ] ~docv:"FILE"
            ~doc:"Dump the span aggregates as CSV to $(docv).")
  in
  let history =
    Arg.(value & opt (some string) None
        & info [ "history" ] ~docv:"FILE"
            ~doc:"Append a host-tagged snapshot of the run's span totals to the \
                  $(docv) history store (one JSON line per run), for \
                  $(b,repro report --diff).")
  in
  let history_label =
    Arg.(value & opt string "repro"
        & info [ "history-label" ] ~docv:"LABEL"
            ~doc:"Label recorded with the $(b,--history) snapshot.")
  in
  Term.(const (fun trace metrics_json obs_summary obs_csv history history_label ->
            { trace; metrics_json; obs_summary; obs_csv; history; history_label })
        $ trace $ metrics $ summary $ csv $ history $ history_label)

(* one metric per aggregated span: "<exp>:<path>.total_ns" (path alone when
   the span ran outside any experiment); shared by --history snapshots and
   trace-derived diff entries so the two kinds compare *)
let span_metric_name ~exp ~path =
  (if exp = "" then path else exp ^ ":" ^ path) ^ ".total_ns"

let write_json_doc path doc =
  Gap_util.Atomic_io.write_string path
    (Gap_obs.Json.to_string ~pretty:true doc ^ "\n")

let append_history_from_sink sink ~store ~label =
  let metrics =
    List.map
      (fun (s : Gap_obs.Obs.span_stats) ->
        (span_metric_name ~exp:s.Gap_obs.Obs.exp ~path:s.Gap_obs.Obs.path,
         s.Gap_obs.Obs.total_ns))
      (Gap_obs.Obs.spans sink)
  in
  Gap_obs.History.append store (Gap_obs.History.make ~label metrics);
  Printf.eprintf "history: appended %d metrics to %s\n" (List.length metrics) store

let with_obs opts f =
  if
    Option.is_none opts.trace
    && Option.is_none opts.metrics_json
    && (not opts.obs_summary)
    && Option.is_none opts.obs_csv
    && Option.is_none opts.history
  then f ()
  else begin
    (* every artifact goes through Atomic_io: the trace streams into a temp
       file committed (renamed over the target) only on success, so a crash
       mid-run cannot leave a truncated JSONL file behind *)
    let trace_w = Option.map Gap_util.Atomic_io.start opts.trace in
    let sink =
      Gap_obs.Obs.recorder ?trace:(Option.map Gap_util.Atomic_io.channel trace_w) ()
    in
    match Gap_obs.Obs.with_sink sink f with
    | code ->
        Option.iter Gap_util.Atomic_io.commit trace_w;
        Option.iter (Gap_obs.Obs.write_metrics_json sink) opts.metrics_json;
        Option.iter
          (fun path ->
            Gap_util.Atomic_io.write_string path (Gap_obs.Obs.spans_csv sink))
          opts.obs_csv;
        Option.iter
          (fun store ->
            append_history_from_sink sink ~store ~label:opts.history_label)
          opts.history;
        if opts.obs_summary then print_string (Gap_obs.Obs.summary sink);
        code
    | exception e ->
        Option.iter Gap_util.Atomic_io.abort trace_w;
        raise e
  end

let list_experiments () =
  List.iter
    (fun (id, title, _) -> Printf.printf "%-4s %s\n" id title)
    Gap_experiments.Registry.all;
  print_endline "--- extensions ---";
  List.iter
    (fun (id, title, _) -> Printf.printf "%-4s %s\n" id title)
    Gap_experiments.Registry.extensions;
  0

module Supervisor = Gap_resilience.Supervisor
module Campaign = Gap_experiments.Campaign

let run_ids ids =
  let missing = ref [] in
  let failed = ref [] in
  List.iter
    (fun id ->
      match Gap_experiments.Registry.find id with
      | Some run -> (
          (* each experiment runs in its own supervised stage: one failure
             prints a typed diagnostic and the rest still run *)
          let outcome =
            Supervisor.run_stage ~policy:Supervisor.no_retry
              ~stage:("exp." ^ id) (fun () -> run ())
          in
          match outcome.Supervisor.result with
          | Ok r -> Gap_experiments.Exp.print r
          | Error err ->
              failed := id :: !failed;
              Printf.eprintf "%s FAILED: %s\n" id
                (Gap_resilience.Stage_error.to_string err))
      | None -> missing := id :: !missing)
    ids;
  if !missing <> [] then begin
    Printf.eprintf "unknown experiment id(s): %s\n" (String.concat ", " !missing);
    1
  end
  else if !failed <> [] then 1
  else 0

let run_all with_extensions checkpoint =
  let ids = List.map (fun (id, _, _) -> id) Gap_experiments.Registry.all in
  let ids =
    if with_extensions then
      ids @ List.map (fun (id, _, _) -> id) Gap_experiments.Registry.extensions
    else ids
  in
  let outcomes = Campaign.run_experiments ?checkpoint ~ids () in
  print_string (Campaign.output outcomes);
  if Campaign.all_passed outcomes then 0 else 1

let run_resume checkpoint =
  match Campaign.resume_experiments ~checkpoint () with
  | outcomes ->
      print_string (Campaign.output outcomes);
      if Campaign.all_passed outcomes then 0 else 1
  | exception Failure msg ->
      Printf.eprintf "resume: %s\n" msg;
      1

let list_faults () =
  print_string
    (Gap_util.Table.render
       ~aligns:Gap_util.Table.[ Left; Left; Left; Left ]
       ~header:[ "site"; "layer"; "kinds"; "on injection" ]
       (List.map
          (fun (site, kinds, desc) ->
            [
              site;
              Gap_resilience.Fault.layer site;
              String.concat ","
                (List.map Gap_resilience.Stage_error.kind_string kinds);
              desc;
            ])
          Gap_resilience.Fault.catalog));
  0

let run_faults list seed json_path =
  if list then list_faults ()
  else begin
  let results = Campaign.run_faults ~seed () in
  print_string (Campaign.faults_table results);
  Option.iter
    (fun path ->
      let doc = Campaign.faults_json ~seed results in
      Gap_util.Atomic_io.write_string path
        (Gap_obs.Json.to_string ~pretty:true doc ^ "\n"))
    json_path;
  if Campaign.faults_ok results then 0
  else begin
    Printf.eprintf
      "faults: some fault sites were silent, uncaught, or not exercised\n";
    1
  end
  end

let analysis () =
  Gap_core.Report.print_full_analysis ();
  0

(* --- dump: synthesize a named circuit and print Verilog --- *)

let circuits =
  [
    ("cla16", fun () -> Gap_datapath.Adders.cla_adder 16);
    ("cla32", fun () -> Gap_datapath.Adders.cla_adder 32);
    ("ripple16", fun () -> Gap_datapath.Adders.ripple_adder 16);
    ("ks32", fun () -> Gap_datapath.Adders.kogge_stone_adder 32);
    ("mult8", fun () -> Gap_datapath.Multiplier.array_multiplier ~width:8);
    ("alu16", fun () -> Gap_datapath.Alu.alu ~adder:`Cla 16);
    ("shift32", fun () -> Gap_datapath.Shifter.barrel_shifter ~width:32);
    ("popcount16", fun () -> Gap_datapath.Counting.popcount ~width:16);
    ("decoder5", fun () -> Gap_datapath.Encoders.decoder ~width:5);
  ]

let dump name lib_profile stages =
  match List.assoc_opt name circuits with
  | None ->
      Printf.eprintf "unknown circuit %s; available: %s\n" name
        (String.concat ", " (List.map fst circuits));
      1
  | Some gen ->
      let tech = Gap_tech.Tech.asic_025um in
      let profile =
        match lib_profile with
        | "rich" -> Gap_liberty.Libgen.rich
        | "poor" -> Gap_liberty.Libgen.poor
        | "typical" -> Gap_liberty.Libgen.typical
        | "custom" -> Gap_liberty.Libgen.custom
        | other ->
            Printf.eprintf "unknown library profile %s, using rich\n" other;
            Gap_liberty.Libgen.rich
      in
      let lib = Gap_liberty.Libgen.make tech profile in
      let outcome = Gap_synth.Flow.run ~lib ~name (gen ()) in
      let nl = outcome.Gap_synth.Flow.netlist in
      if stages > 1 then
        ignore (Gap_retime.Pipeline.pipeline ~stages nl);
      Printf.eprintf "// %s\n" (Gap_sta.Report.summary (Gap_sta.Sta.analyze nl) ~lib);
      print_string (Gap_netlist.Verilog.write nl);
      0

let libdump profile_name =
  let tech = Gap_tech.Tech.asic_025um in
  let profile =
    match profile_name with
    | "rich" -> Some Gap_liberty.Libgen.rich
    | "poor" -> Some Gap_liberty.Libgen.poor
    | "typical" -> Some Gap_liberty.Libgen.typical
    | "domino" -> Some Gap_liberty.Libgen.domino
    | "custom" -> Some Gap_liberty.Libgen.custom
    | _ -> None
  in
  match profile with
  | None ->
      Printf.eprintf "unknown profile %s (rich, typical, poor, domino, custom)\n" profile_name;
      1
  | Some p ->
      Gap_liberty.Liberty_io.write_to_channel stdout (Gap_liberty.Libgen.make tech p);
      0

let list_cmd =
  let doc = "List the reproduced experiments." in
  Cmd.v (Cmd.info "list" ~doc) Term.(const list_experiments $ const ())

let run_cmd =
  let ids = Arg.(non_empty & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids (e.g. E3, X1)") in
  let doc = "Run selected experiments." in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const (fun obs ids -> with_obs obs (fun () -> run_ids ids)) $ obs_term $ ids)

let all_cmd =
  let ext =
    Arg.(value & flag & info [ "extensions"; "x" ] ~doc:"Also run the X1..X3 extensions.")
  in
  let checkpoint =
    Arg.(value & opt (some string) None
        & info [ "checkpoint" ] ~docv:"FILE"
            ~doc:"Atomically checkpoint campaign progress to $(docv) after every \
                  completed experiment; continue later with $(b,repro resume).")
  in
  let doc = "Run every experiment and print the pass/fail summary." in
  Cmd.v (Cmd.info "all" ~doc)
    Term.(const (fun obs ext ckpt -> with_obs obs (fun () -> run_all ext ckpt))
          $ obs_term $ ext $ checkpoint)

let resume_cmd =
  let ckpt_arg =
    Arg.(required & pos 0 (some string) None
        & info [] ~docv:"FILE"
            ~doc:"Checkpoint file written by $(b,repro all --checkpoint).")
  in
  let doc =
    "Resume an interrupted campaign: completed experiments replay from the \
     checkpoint byte-identically, the rest run fresh."
  in
  Cmd.v (Cmd.info "resume" ~doc)
    Term.(const (fun obs ckpt -> with_obs obs (fun () -> run_resume ckpt))
          $ obs_term $ ckpt_arg)

let faults_cmd =
  let seed_arg =
    Arg.(value & opt int64 2027L
        & info [ "seed" ] ~docv:"N"
            ~doc:"Seed choosing where in each driver's run the fault lands.")
  in
  let json_arg =
    Arg.(value & opt (some string) None
        & info [ "json" ] ~docv:"FILE"
            ~doc:"Write the campaign report (per site: hits, injections, \
                  retries, degradations, outcome) to $(docv) as JSON.")
  in
  let list_arg =
    Arg.(value & flag
        & info [ "list" ]
            ~doc:"Print the fault-site registry (site, owning layer, \
                  applicable kinds, injection semantics) and exit without \
                  running the campaign.")
  in
  let doc =
    "Run the deterministic fault-injection campaign: every registered fault \
     site is injected at least once and must recover, degrade, or fail with \
     a typed diagnostic."
  in
  Cmd.v (Cmd.info "faults" ~doc)
    Term.(const (fun obs list seed json ->
              with_obs obs (fun () -> run_faults list seed json))
          $ obs_term $ list_arg $ seed_arg $ json_arg)

let analysis_cmd =
  let doc = "Print the factor table, residual analysis and methodology comparison." in
  Cmd.v (Cmd.info "analysis" ~doc)
    Term.(const (fun obs () -> with_obs obs analysis) $ obs_term $ const ())

let dump_cmd =
  let circuit_arg =
    Arg.(required & pos 0 (some string) None
        & info [] ~docv:"CIRCUIT" ~doc:"Circuit name (see error message for the list).")
  in
  let lib_arg =
    Arg.(value & opt string "rich"
        & info [ "lib" ] ~docv:"PROFILE" ~doc:"Library profile: rich, typical, poor, custom.")
  in
  let stages_arg =
    Arg.(value & opt int 1
        & info [ "stages" ] ~docv:"N" ~doc:"Pipeline the circuit into N stages before dumping.")
  in
  let doc = "Synthesize a circuit and emit structural Verilog on stdout." in
  Cmd.v (Cmd.info "dump" ~doc) Term.(const dump $ circuit_arg $ lib_arg $ stages_arg)

(* --- check: run experiments under design-rule stage gates --- *)

module Check = Gap_netlist.Check

let run_check ids strict json_path =
  let ids =
    if ids = [] then List.map (fun (id, _, _) -> id) Gap_experiments.Registry.all
    else List.map String.uppercase_ascii ids
  in
  let missing =
    (* Option.is_none, not [= None]: the payload is a closure, which
       structural equality must never be asked about *)
    List.filter (fun id -> Option.is_none (Gap_experiments.Registry.find id)) ids
  in
  if missing <> [] then begin
    Printf.eprintf "unknown experiment id(s): %s\n" (String.concat ", " missing);
    1
  end
  else begin
    let per_exp =
      List.map
        (fun id ->
          let run = Option.get (Gap_experiments.Registry.find id) in
          let (_ : Gap_experiments.Exp.result), log =
            Check.with_gates (fun () -> run ())
          in
          (id, log))
        ids
    in
    let count sev ds =
      List.length (List.filter (fun (d : Check.diagnostic) -> d.Check.severity = sev) ds)
    in
    let tot_gates = ref 0 and tot_err = ref 0 and tot_warn = ref 0 and tot_info = ref 0 in
    List.iter
      (fun (id, log) ->
        (* aggregate per stage so sweep-heavy experiments stay readable *)
        let stages = ref [] in
        List.iter
          (fun (r : Check.gate_report) ->
            incr tot_gates;
            match List.assoc_opt r.Check.stage !stages with
            | Some (n, ds) ->
                stages :=
                  (r.Check.stage, (n + 1, ds @ r.Check.diagnostics))
                  :: List.remove_assoc r.Check.stage !stages
            | None -> stages := (r.Check.stage, (1, r.Check.diagnostics)) :: !stages)
          log;
        List.iter
          (fun (stage, (gates, ds)) ->
            let e = count Check.Error ds
            and w = count Check.Warning ds
            and i = count Check.Info ds in
            tot_err := !tot_err + e;
            tot_warn := !tot_warn + w;
            tot_info := !tot_info + i;
            Printf.printf "%-4s %-22s %3d gate%s  %d errors, %d warnings, %d info\n"
              id stage gates
              (if gates = 1 then " " else "s")
              e w i;
            let shown = ref 0 in
            List.iter
              (fun (d : Check.diagnostic) ->
                if d.Check.severity <> Check.Info then begin
                  if !shown < 5 then
                    Printf.printf "       %s\n"
                      (Format.asprintf "%a" Check.pp_diagnostic d);
                  incr shown
                end)
              ds;
            if !shown > 5 then Printf.printf "       (+%d more)\n" (!shown - 5))
          (List.rev !stages))
      per_exp;
    Printf.printf "TOTAL: %d gates, %d errors, %d warnings, %d info\n" !tot_gates
      !tot_err !tot_warn !tot_info;
    Option.iter
      (fun path ->
        let doc =
          Gap_obs.Json.Obj
            [
              ( "experiments",
                Gap_obs.Json.List
                  (List.map
                     (fun (id, log) ->
                       Gap_obs.Json.Obj
                         [
                           ("id", Gap_obs.Json.Str id);
                           ( "gates",
                             Gap_obs.Json.List
                               (List.map Check.gate_report_json log) );
                         ])
                     per_exp) );
              ( "totals",
                Gap_obs.Json.Obj
                  [
                    ("gates", Gap_obs.Json.Int !tot_gates);
                    ("errors", Gap_obs.Json.Int !tot_err);
                    ("warnings", Gap_obs.Json.Int !tot_warn);
                    ("info", Gap_obs.Json.Int !tot_info);
                  ] );
            ]
        in
        Gap_util.Atomic_io.write_string path
          (Gap_obs.Json.to_string ~pretty:true doc ^ "\n"))
      json_path;
    if strict && !tot_err > 0 then begin
      Printf.eprintf "check --strict: %d error diagnostic(s)\n" !tot_err;
      1
    end
    else 0
  end

let check_cmd =
  let ids =
    Arg.(value & pos_all string []
        & info [] ~docv:"ID"
            ~doc:"Experiment ids to check (default: E1..E10).")
  in
  let strict =
    Arg.(value & flag
        & info [ "strict" ]
            ~doc:"Exit non-zero if any stage gate emits an $(i,Error) diagnostic.")
  in
  let json =
    Arg.(value & opt (some string) None
        & info [ "json" ] ~docv:"FILE"
            ~doc:"Write the full diagnostics report (per gate, per rule, with \
                  witnesses) to $(docv) as JSON.")
  in
  let doc =
    "Run experiments with design-rule stage gates armed and report diagnostics."
  in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(const (fun obs ids strict json -> with_obs obs (fun () -> run_check ids strict json))
          $ obs_term $ ids $ strict $ json)

(* --- validate-json: strict check for the metrics / trace artifacts --- *)

let validate_json path =
  match
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    s
  with
  | exception Sys_error e ->
      Printf.eprintf "%s\n" e;
      1
  | s -> (
      match Gap_obs.Json.of_string s with
      | Ok _ ->
          Printf.printf "%s: valid JSON (%d bytes)\n" path (String.length s);
          0
      | Error doc_err ->
          (* maybe a JSONL trace: every non-empty line must parse *)
          let lines =
            List.filter
              (fun l -> String.trim l <> "")
              (String.split_on_char '\n' s)
          in
          let all_parse =
            lines <> []
            && List.for_all
                 (fun l ->
                   match Gap_obs.Json.of_string l with
                   | Ok _ -> true
                   | Error _ -> false)
                 lines
          in
          if all_parse then begin
            Printf.printf "%s: valid JSONL (%d lines)\n" path (List.length lines);
            0
          end
          else begin
            Printf.eprintf "%s: malformed JSON: %s\n" path doc_err;
            1
          end)

let validate_json_cmd =
  let path_arg =
    Arg.(required & pos 0 (some string) None
        & info [] ~docv:"FILE" ~doc:"JSON or JSONL file to validate.")
  in
  let doc = "Validate a metrics JSON document or JSONL trace; exits non-zero if malformed." in
  Cmd.v (Cmd.info "validate-json" ~doc) Term.(const validate_json $ path_arg)

let libdump_cmd =
  let profile_arg =
    Arg.(value & pos 0 string "rich"
        & info [] ~docv:"PROFILE" ~doc:"Library profile: rich, typical, poor, domino, custom.")
  in
  let doc = "Generate a library and emit it in Liberty format on stdout." in
  Cmd.v (Cmd.info "libdump" ~doc) Term.(const libdump $ profile_arg)

(* --- report / export-trace: the analysis half of the observatory --- *)

module Trace = Gap_obs.Trace
module Report = Gap_obs.Report
module History = Gap_obs.History
module Export = Gap_obs.Export

(* a trace file diffs like a history snapshot: one metric per aggregated
   span path, no calibration (0 = unknown, diff skips normalization) *)
let entry_of_trace path =
  match Trace.read_file path with
  | Error e -> Error (Printf.sprintf "%s: %s" path e)
  | Ok tr ->
      let r = Report.analyze tr in
      let metrics =
        ("trace.wall_ns", r.Report.wall_ns)
        :: List.map
             (fun (n : Report.node) ->
               ( span_metric_name ~exp:n.Report.n_exp ~path:n.Report.n_path,
                 n.Report.n_total_ns ))
             r.Report.nodes
      in
      Ok (History.make ~calibration_ns:0. ~label:path metrics)

let run_report_analyze trace_path top json_path =
  match Trace.read_file trace_path with
  | Error e ->
      Printf.eprintf "%s: %s\n" trace_path e;
      1
  | Ok tr ->
      let r = Report.analyze tr in
      print_string (Report.render ~top r);
      Option.iter (fun p -> write_json_doc p (Report.to_json ~top r)) json_path;
      0

let run_report_diff a b gate history_path =
  let entries, trunc =
    match History.read history_path with
    | Ok (es, t) -> (es, t)
    | Error e ->
        Printf.eprintf "%s: %s\n" history_path e;
        ([], None)
  in
  Option.iter
    (fun n -> Printf.eprintf "history: dropped truncated tail (%s)\n" n)
    trunc;
  let resolve side =
    if Sys.file_exists side then
      match entry_of_trace side with Ok e -> `Entry e | Error m -> `Err m
    else
      match History.find entries side with
      | Some e -> `Entry e
      | None ->
          if (side = "prev" || side = "last") && List.length entries < 2 then
            `Insufficient
          else
            `Err
              (Printf.sprintf "%s: no such file, and not found in %s" side
                 history_path)
  in
  match (resolve a, resolve b) with
  | `Insufficient, _ | _, `Insufficient ->
      Printf.printf
        "history %s has %d entr%s; nothing to diff against yet\n" history_path
        (List.length entries)
        (if List.length entries = 1 then "y" else "ies");
      0
  | `Err m, _ | _, `Err m ->
      prerr_endline m;
      1
  | `Entry baseline, `Entry current -> (
      Printf.printf "diff: %s (%s) -> %s (%s)\n" baseline.History.label
        baseline.History.meta.History.host current.History.label
        current.History.meta.History.host;
      let d = History.diff ~baseline ~current in
      print_string (History.render_diff ?gate_pct:gate d);
      match gate with
      | None -> 0
      | Some g ->
          let regs = History.regressions ~gate_pct:g d in
          if regs = [] then begin
            Printf.printf "gate %.1f%%: ok (%d metrics compared)\n" g
              (List.length d.History.deltas);
            0
          end
          else begin
            Printf.eprintf "gate %.1f%%: %d metric(s) regressed\n" g
              (List.length regs);
            1
          end)

let default_history = "BENCH_history.jsonl"

(* --by-stage: pipeline-stage-resolved slack from a metrics JSON document.
   Histograms are not in the JSONL trace stream, so this reads the
   --metrics-json artifact and reconstructs each sta.slack_by_stage.<s>
   histogram against the STA slack bucket bounds (zero-count buckets are
   omitted on emission; percentiles need the full layout back). *)
let run_report_by_stage path =
  let module Json = Gap_obs.Json in
  match
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    s
  with
  | exception Sys_error e ->
      Printf.eprintf "%s\n" e;
      1
  | s -> (
      match Json.of_string s with
      | Error e ->
          Printf.eprintf "%s: malformed JSON: %s\n" path e;
          1
      | Ok doc ->
          let num = function
            | Some (Json.Float f) -> f
            | Some (Json.Int i) -> float_of_int i
            | _ -> nan
          in
          let bounds = Gap_sta.Sta.slack_bounds_ps in
          let prefix = "sta.slack_by_stage." in
          let plen = String.length prefix in
          let hists =
            match Json.member "histograms" doc with
            | Some (Json.List l) -> l
            | _ -> []
          in
          let stages =
            List.filter_map
              (fun h ->
                match Json.member "name" h with
                | Some (Json.Str n)
                  when String.length n > plen && String.sub n 0 plen = prefix ->
                    Some (String.sub n plen (String.length n - plen), h)
                | _ -> None)
              hists
            |> List.sort compare
          in
          if stages = [] then begin
            Printf.eprintf
              "%s: no sta.slack_by_stage.* histograms (capture one with \
               --metrics-json on an STA-running command)\n"
              path;
            1
          end
          else begin
            Printf.printf "pipeline-stage slack (%s)\n" path;
            Printf.printf "%-6s %10s %12s %12s %12s %12s %14s\n" "stage"
              "endpoints" "worst_ps" "mean_ps" "p50_ps" "p90_ps" "total_ps";
            List.iter
              (fun (stage, h) ->
                let n =
                  match Json.member "n" h with Some (Json.Int n) -> n | _ -> 0
                in
                let sum = num (Json.member "sum" h) in
                let min_v = num (Json.member "min" h) in
                let counts = Array.make (Array.length bounds + 1) 0 in
                (match Json.member "buckets" h with
                | Some (Json.List bs) ->
                    List.iter
                      (fun b ->
                        let c =
                          match Json.member "count" b with
                          | Some (Json.Int c) -> c
                          | _ -> 0
                        in
                        let idx =
                          match Json.member "le" b with
                          | Some (Json.Float le) -> (
                              match
                                Array.to_list bounds
                                |> List.mapi (fun i x -> (i, x))
                                |> List.find_opt (fun (_, x) -> x = le)
                              with
                              | Some (i, _) -> i
                              | None -> Array.length bounds)
                          | _ -> Array.length bounds
                        in
                        counts.(idx) <- counts.(idx) + c)
                      bs
                | _ -> ());
                let p q = Gap_obs.Report.hist_percentile ~bounds ~counts q in
                Printf.printf "%-6s %10d %12.1f %12.1f %12.1f %12.1f %14.1f\n"
                  stage n min_v
                  (if n = 0 then 0. else sum /. float_of_int n)
                  (p 50.) (p 90.) sum)
              stages;
            0
          end)

let report_cmd =
  let args_arg =
    Arg.(value & pos_all string []
        & info [] ~docv:"ARG"
            ~doc:"A JSONL trace file to analyze, or (with $(b,--diff)) two \
                  sides to compare: each a trace file, or a history selector \
                  ($(i,last), $(i,prev), $(i,@N), or a label).")
  in
  let diff_arg =
    Arg.(value & flag
        & info [ "diff" ]
            ~doc:"Compare two runs metric-by-metric instead of analyzing one \
                  trace; deltas are normalized by the entries' host \
                  calibration numbers.")
  in
  let gate_arg =
    Arg.(value & opt (some float) None
        & info [ "gate" ] ~docv:"PCT"
            ~doc:"With $(b,--diff): exit non-zero if any metric regressed by \
                  more than $(docv) percent (normalized).")
  in
  let top_arg =
    Arg.(value & opt int 10
        & info [ "top" ] ~docv:"K" ~doc:"Rows in the top-K rankings (default 10).")
  in
  let json_arg =
    Arg.(value & opt (some string) None
        & info [ "json" ] ~docv:"FILE"
            ~doc:"Write the full analysis document to $(docv) as JSON.")
  in
  let history_arg =
    Arg.(value & opt string default_history
        & info [ "history" ] ~docv:"FILE"
            ~doc:"History store consulted for $(b,--diff) selectors.")
  in
  let by_stage_arg =
    Arg.(value & flag
        & info [ "by-stage" ]
            ~doc:"Render the pipeline-stage-resolved slack table from a \
                  metrics JSON document (a $(b,--metrics-json) artifact) \
                  instead of analyzing a trace.")
  in
  let run args diff by_stage gate top json history =
    match (diff, by_stage, args) with
    | false, true, [ metrics ] -> run_report_by_stage metrics
    | false, true, _ ->
        prerr_endline "report --by-stage: expected exactly one METRICS.json argument";
        2
    | true, true, _ ->
        prerr_endline "report: --diff and --by-stage are mutually exclusive";
        2
    | false, false, [ trace ] -> run_report_analyze trace top json
    | false, false, _ ->
        prerr_endline "report: expected exactly one TRACE argument";
        2
    | true, false, [ a; b ] -> run_report_diff a b gate history
    | true, false, _ ->
        prerr_endline "report --diff: expected exactly two sides (A B)";
        2
  in
  let doc =
    "Analyze a JSONL telemetry trace (self-time attribution, top-K spans, \
     critical path), or with $(b,--diff) compare two runs and gate on \
     regressions."
  in
  Cmd.v (Cmd.info "report" ~doc)
    Term.(const run $ args_arg $ diff_arg $ by_stage_arg $ gate_arg $ top_arg
          $ json_arg $ history_arg)

let export_trace_cmd =
  let trace_arg =
    Arg.(required & pos 0 (some string) None
        & info [] ~docv:"TRACE" ~doc:"JSONL trace file to convert.")
  in
  let out_arg =
    Arg.(value & opt (some string) None
        & info [ "o"; "output" ] ~docv:"FILE"
            ~doc:"Output path (default: $(i,TRACE) with a .chrome.json suffix).")
  in
  let run trace out =
    match Trace.read_file trace with
    | Error e ->
        Printf.eprintf "%s: %s\n" trace e;
        1
    | Ok tr ->
        let out =
          match out with
          | Some o -> o
          | None ->
              (if Filename.check_suffix trace ".jsonl" then
                 Filename.chop_suffix trace ".jsonl"
               else trace)
              ^ ".chrome.json"
        in
        Export.write_chrome_trace tr out;
        (match tr.Trace.truncated with
        | Some note -> Printf.eprintf "note: truncated tail dropped (%s)\n" note
        | None -> ());
        Printf.printf "wrote %s (%d records)\n" out (List.length tr.Trace.records);
        0
  in
  let doc =
    "Convert a JSONL telemetry trace to the Chrome trace-event format \
     (loadable in chrome://tracing and ui.perfetto.dev)."
  in
  Cmd.v (Cmd.info "export-trace" ~doc) Term.(const run $ trace_arg $ out_arg)

(* --- dse: design-space sweeps, Pareto frontiers, result cache --- *)

module Dse_space = Gap_dse.Space
module Dse_sweep = Gap_dse.Sweep
module Dse_cache = Gap_dse.Cache

let default_store = "dse-cache.store"

let resolve_preset name =
  match Dse_space.find_preset name with
  | Some space -> Ok space
  | None ->
      Printf.eprintf "unknown preset %s; available: %s\n" name
        (String.concat ", " (Dse_space.preset_names ()));
      Error 1

let sweep_report (r : Dse_sweep.t) =
  (* cache traffic goes to stderr (and --json / Gap_obs): stdout must stay
     byte-identical between cold and warm runs *)
  let s = r.Dse_sweep.stats in
  Printf.eprintf "cache: %d hits, %d misses (%.1f%% hit rate), %d entries\n"
    s.Dse_cache.hits s.Dse_cache.misses
    (100. *. Dse_cache.hit_rate s)
    s.Dse_cache.entries;
  List.iter
    (fun (p, e) ->
      Printf.eprintf "FAILED %s: %s\n"
        (Dse_space.to_canonical p)
        (Gap_resilience.Stage_error.to_string e))
    r.Dse_sweep.failed

let run_sweep preset domains store no_store capacity json_path min_hit_rate =
  match resolve_preset preset with
  | Error rc -> rc
  | Ok space ->
      let store = if no_store then None else Some store in
      let r = Dse_sweep.run ~domains ?capacity ?store ~name:preset space in
      print_string (Dse_sweep.table r);
      sweep_report r;
      Option.iter (fun path -> write_json_doc path (Dse_sweep.to_json r)) json_path;
      let hit_rate = Dse_cache.hit_rate r.Dse_sweep.stats in
      let rc = if r.Dse_sweep.failed <> [] then 1 else 0 in
      (match min_hit_rate with
      | Some m when hit_rate < m ->
          Printf.eprintf "sweep: hit rate %.3f below required %.3f\n" hit_rate m;
          1
      | _ -> rc)

let run_pareto preset domains store no_store json_path =
  match resolve_preset preset with
  | Error rc -> rc
  | Ok space ->
      let store = if no_store then None else Some store in
      let r = Dse_sweep.run ~domains ?store ~name:preset space in
      print_string (Dse_sweep.pareto_table r);
      sweep_report r;
      Option.iter
        (fun path -> write_json_doc path (Dse_sweep.pareto_json r))
        json_path;
      if r.Dse_sweep.failed <> [] then 1 else 0

let cache_stats store =
  match Dse_cache.inspect_store store with
  | Dse_cache.Store i ->
      Printf.printf
        "%s: %d entries (%d records), %d segment%s, generation %d, %s, flow %s%s\n"
        store i.Dse_cache.si_entries i.Dse_cache.si_records
        i.Dse_cache.si_segments
        (if i.Dse_cache.si_segments = 1 then "" else "s")
        i.Dse_cache.si_generation i.Dse_cache.si_format i.Dse_cache.si_flow
        (if i.Dse_cache.si_flow = Gap_dse.Eval.flow_version then ""
         else Printf.sprintf " (stale; current is %s, reads as cold)"
                Gap_dse.Eval.flow_version);
      (match i.Dse_cache.si_torn with
      | Some note -> Printf.printf "note: %s (recovered on next open)\n" note
      | None -> ());
      0
  | Dse_cache.Missing msg | Dse_cache.Foreign msg ->
      Printf.printf "%s\n" msg;
      0
  | Dse_cache.Corrupt e ->
      Printf.eprintf "%s\n" (Gap_resilience.Stage_error.to_string e);
      1

let cache_clear store =
  Dse_cache.clear store;
  Printf.printf "%s: cleared\n" store;
  0

let store_arg =
  Arg.(value & opt string default_store
      & info [ "store" ] ~docv:"PATH"
          ~doc:"Persistent result-cache store: an append-only checksummed \
                segment-store directory (legacy JSON stores migrate on open).")

let no_store_arg =
  Arg.(value & flag
      & info [ "no-store" ] ~doc:"Run with the in-memory cache only; touch no store file.")

let domains_arg =
  Arg.(value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:"Worker domains evaluating cache misses; results are \
                byte-identical for every value.")

let sweep_cmd =
  let preset_arg =
    Arg.(required & pos 0 (some string) None
        & info [] ~docv:"PRESET" ~doc:"Design-space preset (see $(b,repro sweep) errors for the list).")
  in
  let capacity_arg =
    Arg.(value & opt (some int) None
        & info [ "capacity" ] ~docv:"N" ~doc:"In-memory LRU capacity (default 4096).")
  in
  let json_arg =
    Arg.(value & opt (some string) None
        & info [ "json" ] ~docv:"FILE"
            ~doc:"Write the full sweep document (points, metrics, cache accounting) to $(docv).")
  in
  let min_hit_arg =
    Arg.(value & opt (some float) None
        & info [ "min-hit-rate" ] ~docv:"R"
            ~doc:"Exit non-zero unless the cache hit rate reaches $(docv) (0..1).")
  in
  let doc =
    "Sweep a design-space preset: cached points replay from the store, \
     misses evaluate on the worker pool, and the metrics table (byte-identical \
     across cache states and worker counts) prints to stdout."
  in
  Cmd.v (Cmd.info "sweep" ~doc)
    Term.(const (fun obs preset domains store no_store capacity json min_hit ->
              with_obs obs (fun () ->
                  run_sweep preset domains store no_store capacity json min_hit))
          $ obs_term $ preset_arg $ domains_arg $ store_arg $ no_store_arg
          $ capacity_arg $ json_arg $ min_hit_arg)

let pareto_cmd =
  let preset_arg =
    Arg.(value & pos 0 string "factor-axes"
        & info [] ~docv:"PRESET"
            ~doc:"Design-space preset to sweep (default factor-axes, whose \
                  full-custom corner reproduces the paper's x17.8 composite).")
  in
  let json_arg =
    Arg.(value & opt (some string) None
        & info [ "json" ] ~docv:"FILE" ~doc:"Write the frontier to $(docv) as JSON.")
  in
  let doc =
    "Sweep a preset and print its Pareto frontier over (delay, area, power) \
     with the gap-composite column."
  in
  Cmd.v (Cmd.info "pareto" ~doc)
    Term.(const (fun obs preset domains store no_store json ->
              with_obs obs (fun () -> run_pareto preset domains store no_store json))
          $ obs_term $ preset_arg $ domains_arg $ store_arg $ no_store_arg $ json_arg)

let cache_cmd =
  let stats =
    Cmd.v
      (Cmd.info "stats" ~doc:"Report the on-disk store's entry count and flow version.")
      Term.(const cache_stats $ store_arg)
  in
  let clear =
    Cmd.v
      (Cmd.info "clear"
         ~doc:"Atomically replace the store with an empty one (never leaves a partial file).")
      Term.(const cache_clear $ store_arg)
  in
  let doc = "Inspect or reset the persistent DSE result cache." in
  Cmd.group (Cmd.info "cache" ~doc) [ stats; clear ]

(* --- serve: the multi-client evaluation daemon --- *)

module Serve_protocol = Gap_serve.Protocol
module Serve_server = Gap_serve.Server
module Serve_load = Gap_serve.Load

let resolve_addr s =
  match Serve_protocol.addr_of_string s with
  | Ok addr -> Ok addr
  | Error e ->
      Printf.eprintf "%s\n" e;
      Error 124

let serve_config ?(idle_timeout = 0.) addr domains store no_store capacity
    queue_bound fair_share batch_max history =
  {
    (Serve_server.default_config addr) with
    Serve_server.domains;
    store = (if no_store then None else Some store);
    capacity;
    queue_bound;
    fair_share;
    batch_max;
    history;
    idle_timeout_s = (if idle_timeout > 0. then Some idle_timeout else None);
  }

let run_serve addr domains store no_store capacity queue_bound fair_share
    batch_max history idle_timeout =
  match resolve_addr addr with
  | Error rc -> rc
  | Ok addr -> (
      let cfg =
        serve_config ~idle_timeout addr domains store no_store capacity
          queue_bound fair_share batch_max history
      in
      let t = Serve_server.create cfg in
      match Serve_server.start t with
      | () ->
          Printf.eprintf "serving on %s (%d domain%s, queue bound %d)\n%!"
            (Serve_protocol.addr_to_string addr)
            domains
            (if domains = 1 then "" else "s")
            queue_bound;
          Serve_server.wait t;
          Printf.eprintf "server stopped\n";
          0
      | exception Unix.Unix_error (e, fn, arg) ->
          Printf.eprintf "bind %s: %s (%s %s)\n"
            (Serve_protocol.addr_to_string addr)
            (Unix.error_message e) fn arg;
          1)

let queue_bound_arg =
  Arg.(value & opt int 64
      & info [ "queue-bound" ] ~docv:"N"
          ~doc:"Max queued evaluations per client before its reads block \
                (socket backpressure).")

let fair_share_arg =
  Arg.(value & opt int 8
      & info [ "fair-share" ] ~docv:"N"
          ~doc:"Max jobs one client contributes per round-robin scheduling pass.")

let batch_max_arg =
  Arg.(value & opt int 256
      & info [ "batch-max" ] ~docv:"N" ~doc:"Max jobs per worker-pool batch.")

let serve_history_arg =
  Arg.(value & opt (some string) None
      & info [ "history" ] ~docv:"FILE"
          ~doc:"Append a host-tagged snapshot of the daemon's counters to \
                $(docv) on shutdown.")

let serve_cmd =
  let addr_arg =
    Arg.(required & pos 0 (some string) None
        & info [] ~docv:"ADDR"
            ~doc:"Socket to serve on: a filesystem path (Unix-domain; any \
                  string containing '/'), HOST:PORT, or a bare PORT on loopback.")
  in
  let capacity_arg =
    Arg.(value & opt int 4096
        & info [ "capacity" ] ~docv:"N" ~doc:"In-memory LRU capacity.")
  in
  let idle_timeout_arg =
    Arg.(value & opt float 300.
        & info [ "idle-timeout" ] ~docv:"SECONDS"
            ~doc:"Evict a connection silent for $(docv): it gets a typed \
                  timeout response (if its socket is still writable) and is \
                  closed. 0 disables eviction.")
  in
  let doc =
    "Run the evaluation daemon: JSONL requests (eval, sweep, pareto, stats, \
     ping, shutdown) over the socket, all clients sharing one \
     content-addressed result cache. Identical in-flight points coalesce to \
     a single evaluation; per-client queues are bounded and scheduled \
     round-robin; a poisoned request returns a typed stage error. Blocks \
     until a shutdown request arrives."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(const run_serve
          $ addr_arg $ domains_arg $ store_arg $ no_store_arg $ capacity_arg
          $ queue_bound_arg $ fair_share_arg $ batch_max_arg $ serve_history_arg
          $ idle_timeout_arg)

let run_bench_serve addr clients waves unique domains queue_bound fair_share
    batch_max json_path history min_coalesce =
  match resolve_addr addr with
  | Error rc -> rc
  | Ok addr -> (
      let cfg =
        serve_config addr domains "unused" true 65536 queue_bound fair_share
          batch_max None
      in
      let t = Serve_server.create cfg in
      match Serve_server.start t with
      | exception Unix.Unix_error (e, _, _) ->
          Printf.eprintf "bind %s: %s\n"
            (Serve_protocol.addr_to_string addr)
            (Unix.error_message e);
          1
      | () ->
          let r = Serve_load.run ~clients ~waves ~unique ~addr ~server:t () in
          Serve_server.stop t;
          (match addr with
          | Serve_protocol.Unix_sock path ->
              (try Sys.remove path with Sys_error _ -> ())
          | Serve_protocol.Tcp _ -> ());
          let meta = Gap_obs.History.meta_now () in
          let doc =
            Gap_obs.Json.Obj
              [
                ("meta", Gap_obs.History.meta_json meta);
                ("serve", Serve_load.to_json r);
              ]
          in
          Option.iter (fun path -> write_json_doc path doc) json_path;
          Option.iter
            (fun store ->
              Gap_obs.History.append store
                (Gap_obs.History.make ~meta ~label:"bench-serve"
                   [
                     ("serve.p50_ns", r.Serve_load.p50_ns);
                     ("serve.p99_ns", r.Serve_load.p99_ns);
                     ("serve.mean_ns", r.Serve_load.mean_ns);
                     ("serve.throughput_rps", r.Serve_load.throughput_rps);
                     ("serve.coalesce_rate", r.Serve_load.coalesce_rate);
                   ]))
            history;
          Printf.printf
            "serve bench: %d clients, %d requests, %d errors\n\
             latency: p50 %.3f ms, p99 %.3f ms, mean %.3f ms, max %.3f ms\n\
             throughput: %.0f req/s over %.2f s\n\
             server: %d evals, %d coalesced, %d cache hits, %d batches (max %d)\n\
             coalesce rate %.3f, cache hit rate %.3f\n"
            r.Serve_load.clients r.Serve_load.requests r.Serve_load.errors
            (r.Serve_load.p50_ns /. 1e6)
            (r.Serve_load.p99_ns /. 1e6)
            (r.Serve_load.mean_ns /. 1e6)
            (r.Serve_load.max_ns /. 1e6)
            r.Serve_load.throughput_rps
            (r.Serve_load.wall_ns /. 1e9)
            r.Serve_load.server.Serve_server.evals
            r.Serve_load.server.Serve_server.coalesced
            r.Serve_load.server.Serve_server.cache_hits
            r.Serve_load.server.Serve_server.batches
            r.Serve_load.server.Serve_server.max_batch
            r.Serve_load.coalesce_rate r.Serve_load.cache_hit_rate;
          let rc = if r.Serve_load.errors > 0 then 1 else 0 in
          match min_coalesce with
          | Some m when r.Serve_load.coalesce_rate < m ->
              Printf.eprintf
                "bench serve: coalesce rate %.3f below required %.3f\n"
                r.Serve_load.coalesce_rate m;
              1
          | _ -> rc)

let bench_cmd =
  let serve =
    let addr_arg =
      Arg.(value & opt string "./bench-serve.sock"
          & info [ "addr" ] ~docv:"ADDR"
              ~doc:"Socket the in-process daemon serves on for the run \
                    (default a Unix socket in the working directory, removed \
                    afterwards).")
    in
    let clients_arg =
      Arg.(value & opt int 256
          & info [ "clients" ] ~docv:"N" ~doc:"Concurrent client connections.")
    in
    let waves_arg =
      Arg.(value & opt int 8
          & info [ "waves" ] ~docv:"N"
              ~doc:"Barrier-synchronized waves in which every client requests \
                    the same fresh point (the coalescing path).")
    in
    let unique_arg =
      Arg.(value & opt int 2
          & info [ "unique" ] ~docv:"N"
              ~doc:"Fresh points per client that no other client requests \
                    (the queueing path).")
    in
    let json_arg =
      Arg.(value & opt (some string) None
          & info [ "json" ] ~docv:"FILE"
              ~doc:"Write the benchmark document (host meta, latency \
                    percentiles, server counters) to $(docv).")
    in
    let min_coalesce_arg =
      Arg.(value & opt (some float) None
          & info [ "min-coalesce-rate" ] ~docv:"R"
              ~doc:"Exit non-zero unless coalesced/(coalesced+evals) reaches \
                    $(docv) (0..1).")
    in
    let doc =
      "Start an in-process daemon, drive it with hundreds of concurrent \
       clients (synchronized waves on shared points plus per-client unique \
       points), and report latency percentiles, throughput, and \
       coalesce/cache effectiveness."
    in
    Cmd.v (Cmd.info "serve" ~doc)
      Term.(const run_bench_serve
            $ addr_arg $ clients_arg $ waves_arg $ unique_arg $ domains_arg
            $ queue_bound_arg $ fair_share_arg $ batch_max_arg $ json_arg
            $ serve_history_arg $ min_coalesce_arg)
  in
  let doc = "Load benchmarks (see also the bechamel harness under bench/)." in
  Cmd.group (Cmd.info "bench" ~doc) [ serve ]

(* --- chaos: the serve crash/fault campaign --- *)

let run_chaos_serve json_path =
  let campaign = Gap_serve.Chaos.run () in
  print_string (Gap_serve.Chaos.table campaign);
  if campaign.Gap_serve.Chaos.missing_sites <> [] then
    Printf.eprintf "coverage gap: catalog site(s) %s claimed by neither campaign\n"
      (String.concat ", " campaign.Gap_serve.Chaos.missing_sites);
  Option.iter
    (fun path ->
      Gap_util.Atomic_io.write_string path
        (Gap_obs.Json.to_string ~pretty:true (Gap_serve.Chaos.to_json campaign)
        ^ "\n"))
    json_path;
  if campaign.Gap_serve.Chaos.ok then 0
  else begin
    Printf.eprintf "chaos: scenario failures or coverage gaps (see table)\n";
    1
  end

let chaos_cmd =
  let serve =
    let json_arg =
      Arg.(value & opt (some string) None
          & info [ "json" ] ~docv:"FILE"
              ~doc:"Write the campaign document (scenarios, coverage \
                    partition, ok gate) to $(docv) as JSON.")
    in
    let doc =
      "Run the serve chaos campaign: SIGKILL a serving process mid-workload, \
       truncate a store at every byte offset, corrupt records before the \
       tail, arm every daemon-reachable fault site, interrupt a JSON \
       migration, and abuse the daemon with vanishing, stalling, and \
       flooding clients — asserting after each that the store validates and \
       a warm restart replays byte-identically."
    in
    Cmd.v (Cmd.info "serve" ~doc)
      Term.(const (fun obs json -> with_obs obs (fun () -> run_chaos_serve json))
            $ obs_term $ json_arg)
  in
  let doc = "Crash/fault chaos campaigns." in
  Cmd.group (Cmd.info "chaos" ~doc) [ serve ]

(* --- fpga-gap: the three-way FPGA / ASIC / custom measurement (E11) --- *)

let run_fpga_gap vectors json_path =
  let t = Gap_fpga.Gap3.run ~vectors () in
  print_string (Gap_fpga.Gap3.render t);
  (* the pipelined showcase: its STA emits the sta.slack_by_stage.*
     histograms, so a --metrics-json capture of this command feeds
     [repro report --by-stage] a multi-stage table *)
  let d = Gap_fpga.Gap3.stage_demo () in
  Printf.printf
    "\npipelined cla16 on the fabric: %.2f ns -> %.2f ns over %d stages\n"
    (d.Gap_fpga.Gap3.pipeline.Gap_retime.Pipeline.period_before_ps /. 1000.)
    (d.Gap_fpga.Gap3.pipeline.Gap_retime.Pipeline.period_after_ps /. 1000.)
    d.Gap_fpga.Gap3.pipeline.Gap_retime.Pipeline.stages;
  List.iter
    (fun (st : Gap_sta.Sta.stage_slack) ->
      Printf.printf "  stage %s: %d endpoints, worst slack %.0f ps\n"
        (Gap_sta.Sta.stage_label st.Gap_sta.Sta.stage)
        st.Gap_sta.Sta.endpoints st.Gap_sta.Sta.worst_ps)
    d.Gap_fpga.Gap3.stage_slacks;
  Option.iter (fun p -> write_json_doc p (Gap_fpga.Gap3.to_json t)) json_path;
  if Gap_fpga.Gap3.ok t then 0
  else begin
    Printf.eprintf "fpga-gap: measured ratio(s) outside the Charm tolerance\n";
    1
  end

let fpga_gap_cmd =
  let vectors_arg =
    Arg.(value & opt int Gap_fpga.Gap3.default_vectors
        & info [ "vectors" ] ~docv:"N"
            ~doc:"Random vectors per design for the dynamic-power estimate.")
  in
  let json_arg =
    Arg.(value & opt (some string) None
        & info [ "json" ] ~docv:"FILE"
            ~doc:"Write the measurement document (per-variant ratios, factor \
                  products, Charm gates) to $(docv) as JSON.")
  in
  let doc =
    "Measure the FPGA/ASIC gap by implementing each Charm variant's fixture \
     suite through both technology backends, decompose it into factor \
     products, chain the paper's ASIC->custom model for the three-way \
     FPGA/ASIC/custom table, and gate the measured ratios against the Charm \
     constants; exits non-zero outside tolerance."
  in
  Cmd.v (Cmd.info "fpga-gap" ~doc)
    Term.(const (fun obs vectors json ->
              with_obs obs (fun () -> run_fpga_gap vectors json))
          $ obs_term $ vectors_arg $ json_arg)

let main =
  let doc = "reproduction of Chinnery & Keutzer, 'Closing the Gap Between ASIC and Custom' (DAC 2000)" in
  Cmd.group
    (Cmd.info "repro" ~version:"1.0" ~doc)
    [ list_cmd; run_cmd; all_cmd; resume_cmd; faults_cmd; analysis_cmd;
      check_cmd; dump_cmd; libdump_cmd; validate_json_cmd;
      sweep_cmd; pareto_cmd; cache_cmd; report_cmd; export_trace_cmd;
      serve_cmd; bench_cmd; chaos_cmd; fpga_gap_cmd ]

let () = exit (Cmd.eval' main)
