(* repro: command-line driver for the paper reproduction.

   repro list            enumerate experiments (E1..E10 + extensions X1..X3)
   repro run E3 X1       run selected experiments
   repro all             run everything and print the summary
   repro analysis        print the core gap analysis (factor table etc.)
   repro dump cla16      synthesize a named circuit and emit structural Verilog *)

open Cmdliner

(* --- observability plumbing: --trace / --metrics-json / --obs-summary /
   --obs-csv install a recording sink around the run; with none of them the
   ambient sink stays the no-op and instrumented code is branch-cheap --- *)

type obs_opts = {
  trace : string option;
  metrics_json : string option;
  obs_summary : bool;
  obs_csv : string option;
}

let obs_term =
  let trace =
    Arg.(value & opt (some string) None
        & info [ "trace" ] ~docv:"FILE"
            ~doc:"Stream a JSONL telemetry trace (one JSON object per span/event) to $(docv).")
  in
  let metrics =
    Arg.(value & opt (some string) None
        & info [ "metrics-json" ] ~docv:"FILE"
            ~doc:"Write the aggregated metrics document (spans, counters, gauges, histograms) to $(docv) as JSON.")
  in
  let summary =
    Arg.(value & flag
        & info [ "obs-summary" ] ~doc:"Print the telemetry summary tables after the run.")
  in
  let csv =
    Arg.(value & opt (some string) None
        & info [ "obs-csv" ] ~docv:"FILE"
            ~doc:"Dump the span aggregates as CSV to $(docv).")
  in
  Term.(const (fun trace metrics_json obs_summary obs_csv ->
            { trace; metrics_json; obs_summary; obs_csv })
        $ trace $ metrics $ summary $ csv)

let with_obs opts f =
  if
    opts.trace = None && opts.metrics_json = None && (not opts.obs_summary)
    && opts.obs_csv = None
  then f ()
  else begin
    let trace_oc = Option.map open_out opts.trace in
    let sink = Gap_obs.Obs.recorder ?trace:trace_oc () in
    match Gap_obs.Obs.with_sink sink f with
    | code ->
        Option.iter close_out trace_oc;
        Option.iter (Gap_obs.Obs.write_metrics_json sink) opts.metrics_json;
        Option.iter
          (fun path ->
            let oc = open_out path in
            output_string oc (Gap_obs.Obs.spans_csv sink);
            close_out oc)
          opts.obs_csv;
        if opts.obs_summary then print_string (Gap_obs.Obs.summary sink);
        code
    | exception e ->
        Option.iter close_out trace_oc;
        raise e
  end

let list_experiments () =
  List.iter
    (fun (id, title, _) -> Printf.printf "%-4s %s\n" id title)
    Gap_experiments.Registry.all;
  print_endline "--- extensions ---";
  List.iter
    (fun (id, title, _) -> Printf.printf "%-4s %s\n" id title)
    Gap_experiments.Registry.extensions;
  0

let run_ids ids =
  let missing = ref [] in
  List.iter
    (fun id ->
      match Gap_experiments.Registry.find id with
      | Some run -> Gap_experiments.Exp.print (run ())
      | None -> missing := id :: !missing)
    ids;
  if !missing <> [] then begin
    Printf.eprintf "unknown experiment id(s): %s\n" (String.concat ", " !missing);
    1
  end
  else 0

let run_all with_extensions =
  let results = Gap_experiments.Registry.run_all () in
  let results =
    if with_extensions then results @ Gap_experiments.Registry.run_extensions ()
    else results
  in
  List.iter Gap_experiments.Exp.print results;
  print_newline ();
  print_string (Gap_experiments.Registry.summary results);
  let all_pass =
    List.for_all
      (fun r ->
        let p, c = Gap_experiments.Exp.passes r in
        p = c)
      results
  in
  if all_pass then 0 else 1

let analysis () =
  Gap_core.Report.print_full_analysis ();
  0

(* --- dump: synthesize a named circuit and print Verilog --- *)

let circuits =
  [
    ("cla16", fun () -> Gap_datapath.Adders.cla_adder 16);
    ("cla32", fun () -> Gap_datapath.Adders.cla_adder 32);
    ("ripple16", fun () -> Gap_datapath.Adders.ripple_adder 16);
    ("ks32", fun () -> Gap_datapath.Adders.kogge_stone_adder 32);
    ("mult8", fun () -> Gap_datapath.Multiplier.array_multiplier ~width:8);
    ("alu16", fun () -> Gap_datapath.Alu.alu ~adder:`Cla 16);
    ("shift32", fun () -> Gap_datapath.Shifter.barrel_shifter ~width:32);
    ("popcount16", fun () -> Gap_datapath.Counting.popcount ~width:16);
    ("decoder5", fun () -> Gap_datapath.Encoders.decoder ~width:5);
  ]

let dump name lib_profile stages =
  match List.assoc_opt name circuits with
  | None ->
      Printf.eprintf "unknown circuit %s; available: %s\n" name
        (String.concat ", " (List.map fst circuits));
      1
  | Some gen ->
      let tech = Gap_tech.Tech.asic_025um in
      let profile =
        match lib_profile with
        | "rich" -> Gap_liberty.Libgen.rich
        | "poor" -> Gap_liberty.Libgen.poor
        | "typical" -> Gap_liberty.Libgen.typical
        | "custom" -> Gap_liberty.Libgen.custom
        | other ->
            Printf.eprintf "unknown library profile %s, using rich\n" other;
            Gap_liberty.Libgen.rich
      in
      let lib = Gap_liberty.Libgen.make tech profile in
      let outcome = Gap_synth.Flow.run ~lib ~name (gen ()) in
      let nl = outcome.Gap_synth.Flow.netlist in
      if stages > 1 then
        ignore (Gap_retime.Pipeline.pipeline ~stages nl);
      Printf.eprintf "// %s\n" (Gap_sta.Report.summary (Gap_sta.Sta.analyze nl) ~lib);
      print_string (Gap_netlist.Verilog.write nl);
      0

let libdump profile_name =
  let tech = Gap_tech.Tech.asic_025um in
  let profile =
    match profile_name with
    | "rich" -> Some Gap_liberty.Libgen.rich
    | "poor" -> Some Gap_liberty.Libgen.poor
    | "typical" -> Some Gap_liberty.Libgen.typical
    | "domino" -> Some Gap_liberty.Libgen.domino
    | "custom" -> Some Gap_liberty.Libgen.custom
    | _ -> None
  in
  match profile with
  | None ->
      Printf.eprintf "unknown profile %s (rich, typical, poor, domino, custom)\n" profile_name;
      1
  | Some p ->
      Gap_liberty.Liberty_io.write_to_channel stdout (Gap_liberty.Libgen.make tech p);
      0

let list_cmd =
  let doc = "List the reproduced experiments." in
  Cmd.v (Cmd.info "list" ~doc) Term.(const list_experiments $ const ())

let run_cmd =
  let ids = Arg.(non_empty & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids (e.g. E3, X1)") in
  let doc = "Run selected experiments." in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const (fun obs ids -> with_obs obs (fun () -> run_ids ids)) $ obs_term $ ids)

let all_cmd =
  let ext =
    Arg.(value & flag & info [ "extensions"; "x" ] ~doc:"Also run the X1..X3 extensions.")
  in
  let doc = "Run every experiment and print the pass/fail summary." in
  Cmd.v (Cmd.info "all" ~doc)
    Term.(const (fun obs ext -> with_obs obs (fun () -> run_all ext)) $ obs_term $ ext)

let analysis_cmd =
  let doc = "Print the factor table, residual analysis and methodology comparison." in
  Cmd.v (Cmd.info "analysis" ~doc)
    Term.(const (fun obs () -> with_obs obs analysis) $ obs_term $ const ())

let dump_cmd =
  let circuit_arg =
    Arg.(required & pos 0 (some string) None
        & info [] ~docv:"CIRCUIT" ~doc:"Circuit name (see error message for the list).")
  in
  let lib_arg =
    Arg.(value & opt string "rich"
        & info [ "lib" ] ~docv:"PROFILE" ~doc:"Library profile: rich, typical, poor, custom.")
  in
  let stages_arg =
    Arg.(value & opt int 1
        & info [ "stages" ] ~docv:"N" ~doc:"Pipeline the circuit into N stages before dumping.")
  in
  let doc = "Synthesize a circuit and emit structural Verilog on stdout." in
  Cmd.v (Cmd.info "dump" ~doc) Term.(const dump $ circuit_arg $ lib_arg $ stages_arg)

(* --- validate-json: strict check for the metrics / trace artifacts --- *)

let validate_json path =
  match
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    s
  with
  | exception Sys_error e ->
      Printf.eprintf "%s\n" e;
      1
  | s -> (
      match Gap_obs.Json.of_string s with
      | Ok _ ->
          Printf.printf "%s: valid JSON (%d bytes)\n" path (String.length s);
          0
      | Error doc_err ->
          (* maybe a JSONL trace: every non-empty line must parse *)
          let lines =
            List.filter
              (fun l -> String.trim l <> "")
              (String.split_on_char '\n' s)
          in
          let all_parse =
            lines <> []
            && List.for_all
                 (fun l ->
                   match Gap_obs.Json.of_string l with
                   | Ok _ -> true
                   | Error _ -> false)
                 lines
          in
          if all_parse then begin
            Printf.printf "%s: valid JSONL (%d lines)\n" path (List.length lines);
            0
          end
          else begin
            Printf.eprintf "%s: malformed JSON: %s\n" path doc_err;
            1
          end)

let validate_json_cmd =
  let path_arg =
    Arg.(required & pos 0 (some string) None
        & info [] ~docv:"FILE" ~doc:"JSON or JSONL file to validate.")
  in
  let doc = "Validate a metrics JSON document or JSONL trace; exits non-zero if malformed." in
  Cmd.v (Cmd.info "validate-json" ~doc) Term.(const validate_json $ path_arg)

let libdump_cmd =
  let profile_arg =
    Arg.(value & pos 0 string "rich"
        & info [] ~docv:"PROFILE" ~doc:"Library profile: rich, typical, poor, domino, custom.")
  in
  let doc = "Generate a library and emit it in Liberty format on stdout." in
  Cmd.v (Cmd.info "libdump" ~doc) Term.(const libdump $ profile_arg)

let main =
  let doc = "reproduction of Chinnery & Keutzer, 'Closing the Gap Between ASIC and Custom' (DAC 2000)" in
  Cmd.group
    (Cmd.info "repro" ~version:"1.0" ~doc)
    [ list_cmd; run_cmd; all_cmd; analysis_cmd; dump_cmd; libdump_cmd; validate_json_cmd ]

let () = exit (Cmd.eval' main)
