(* Gap_report observatory: the Trace reader is strict except for a killed
   writer's torn final line, Report's self-time/critical-path/percentile
   arithmetic matches hand-computed values on synthetic traces, the Chrome
   export is strict ts-sorted JSON, and History diffing flags an
   artificially slowed metric at --gate 10 while identical runs pass. *)

module Obs = Gap_obs.Obs
module Json = Gap_obs.Json
module Trace = Gap_obs.Trace
module Report = Gap_obs.Report
module Export = Gap_obs.Export
module History = Gap_obs.History

let with_temp_file f =
  let path = Filename.temp_file "gap_report_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "expected Ok, got Error: %s" e

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else String.sub haystack i nn = needle || go (i + 1)
  in
  nn = 0 || go 0

(* hand-written trace lines: a fixed tree with known totals so the
   analyzer's arithmetic can be checked exactly.

     run (E1, 0..1000)
       sta   (100..700)  minor 0
         prop (150..550) minor 10
       place (700..900)  minor 30   -- called twice: second 900..1000 m 20 *)
let span_line ?(exp = "E1") ~path ~start ~dur ?(minor = 0.) () =
  let name =
    match String.rindex_opt path '/' with
    | Some i -> String.sub path (i + 1) (String.length path - i - 1)
    | None -> path
  in
  let depth = List.length (String.split_on_char '/' path) - 1 in
  Printf.sprintf
    {|{"type":"span","exp":"%s","path":"%s","name":"%s","depth":%d,"start_ns":%d,"dur_ns":%d,"minor_words":%s,"major_words":0.0,"promoted_words":0.0}|}
    exp path name depth start dur (Json.float_repr minor)

let event_line ?(exp = "E1") ~name ~t () =
  Printf.sprintf {|{"type":"event","exp":"%s","name":"%s","t_ns":%d}|} exp name
    t

let synthetic_trace =
  String.concat "\n"
    [
      span_line ~path:"run/sta/prop" ~start:150 ~dur:400 ~minor:10. ();
      span_line ~path:"run/sta" ~start:100 ~dur:600 ();
      event_line ~name:"checkpoint" ~t:650 ();
      span_line ~path:"run/place" ~start:700 ~dur:200 ~minor:30. ();
      span_line ~path:"run/place" ~start:900 ~dur:100 ~minor:20. ();
      event_line ~name:"checkpoint" ~t:950 ();
      span_line ~path:"run" ~start:0 ~dur:1000 ();
    ]
  ^ "\n"

(* --- Trace reader --- *)

let test_trace_reads_recorder_output () =
  with_temp_file (fun path ->
      let oc = open_out path in
      let sink = Obs.recorder ~trace:oc () in
      Obs.with_sink sink (fun () ->
          Obs.with_exp "E6" (fun () ->
              Obs.span "outer" (fun () ->
                  Obs.span "inner" (fun () -> ());
                  Obs.event "tick" [ ("k", Json.Int 1) ])));
      close_out oc;
      let tr = ok (Trace.read_file path) in
      Alcotest.(check (option string)) "no truncation" None tr.Trace.truncated;
      Alcotest.(check int) "three records" 3 tr.Trace.line_count;
      (match Trace.spans tr with
      | [ inner; outer ] ->
          Alcotest.(check string) "inner path" "outer/inner" inner.Trace.s_path;
          Alcotest.(check string) "outer path" "outer" outer.Trace.s_path;
          Alcotest.(check int) "inner depth" 1 inner.Trace.s_depth;
          Alcotest.(check string) "exp tag" "E6" inner.Trace.s_exp;
          Alcotest.(check bool) "durations non-negative" true
            (inner.Trace.s_dur_ns >= 0 && outer.Trace.s_dur_ns >= 0)
      | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l));
      match Trace.events tr with
      | [ e ] ->
          Alcotest.(check string) "event name" "tick" e.Trace.e_name;
          Alcotest.(check bool) "event attrs kept" true
            (List.mem_assoc "k" e.Trace.e_attrs)
      | l -> Alcotest.failf "expected 1 event, got %d" (List.length l))

let test_trace_truncated_tail_tolerated () =
  let torn = synthetic_trace ^ {|{"type":"span","exp":"E1","pa|} in
  let tr = ok (Trace.of_string torn) in
  Alcotest.(check bool) "truncation noted" true (tr.Trace.truncated <> None);
  Alcotest.(check int) "earlier records kept" 7 tr.Trace.line_count

let test_trace_mid_file_malformed_rejected () =
  let broken =
    span_line ~path:"a" ~start:0 ~dur:10 ()
    ^ "\n{not json}\n"
    ^ span_line ~path:"b" ~start:20 ~dur:10 ()
  in
  match Trace.of_string broken with
  | Ok _ -> Alcotest.fail "mid-file garbage must not be tolerated"
  | Error e ->
      Alcotest.(check bool) "error names the line" true
        (String.length e >= 6 && String.sub e 0 6 = "line 2")

let test_trace_schema_strictness () =
  (* a final line that is valid JSON but schema-invalid is a hard error,
     not a tolerated tail: only torn writes get leniency *)
  (match Trace.of_string {|{"type":"bogus"}|} with
  | Ok _ -> Alcotest.fail "unknown record type accepted"
  | Error e ->
      Alcotest.(check bool) "names the type" true (contains e "bogus"));
  (match Trace.of_string {|{"type":"span","exp":"","path":"p","name":"p","depth":0,"start_ns":0,"dur_ns":-5}|} with
  | Ok _ -> Alcotest.fail "negative dur_ns accepted"
  | Error _ -> ());
  (* pre-PR-7 span lines carry no allocation fields: they default to 0 *)
  let old =
    {|{"type":"span","exp":"","path":"p","name":"p","depth":0,"start_ns":0,"dur_ns":5}|}
  in
  match Trace.of_string old with
  | Error e -> Alcotest.failf "old-schema line rejected: %s" e
  | Ok tr -> (
      match Trace.spans tr with
      | [ s ] ->
          Alcotest.(check (float 0.)) "minor defaults 0" 0. s.Trace.s_minor_words;
          Alcotest.(check (float 0.)) "major defaults 0" 0. s.Trace.s_major_words
      | _ -> Alcotest.fail "expected one span")

(* --- Report --- *)

let analyzed = lazy (Report.analyze (ok (Trace.of_string synthetic_trace)))

let node t path =
  match List.find_opt (fun n -> n.Report.n_path = path) t.Report.nodes with
  | Some n -> n
  | None -> Alcotest.failf "no aggregated node for %s" path

let test_report_self_time () =
  let t = Lazy.force analyzed in
  Alcotest.(check int) "five spans" 5 t.Report.span_count;
  Alcotest.(check int) "four aggregated paths" 4 (List.length t.Report.nodes);
  Alcotest.(check (float 1e-9)) "wall is max end - min start" 1000. t.Report.wall_ns;
  let check_node path ~calls ~total ~self =
    let n = node t path in
    Alcotest.(check int) (path ^ " calls") calls n.Report.n_calls;
    Alcotest.(check (float 1e-9)) (path ^ " total") total n.Report.n_total_ns;
    Alcotest.(check (float 1e-9)) (path ^ " self") self n.Report.n_self_ns
  in
  (* run: 1000 total - (sta 600 + place 300) = 100 self
     sta: 600 - prop 400 = 200; leaves keep total as self *)
  check_node "run" ~calls:1 ~total:1000. ~self:100.;
  check_node "run/sta" ~calls:1 ~total:600. ~self:200.;
  check_node "run/sta/prop" ~calls:1 ~total:400. ~self:400.;
  check_node "run/place" ~calls:2 ~total:300. ~self:300.;
  Alcotest.(check (float 1e-9)) "place min over calls" 100.
    (node t "run/place").Report.n_min_ns;
  Alcotest.(check (float 1e-9)) "place minor words sum" 50.
    (node t "run/place").Report.n_minor_words;
  Alcotest.(check (list (pair string int))) "event counts" [ ("checkpoint", 2) ]
    t.Report.event_counts

let test_report_rankings_and_critical_path () =
  let t = Lazy.force analyzed in
  let paths l = List.map (fun n -> n.Report.n_path) l in
  Alcotest.(check (list string)) "top by self time"
    [ "run/sta/prop"; "run/place"; "run/sta"; "run" ]
    (paths (Report.top_by_wall t));
  Alcotest.(check (list string)) "top-k truncates" [ "run/sta/prop" ]
    (paths (Report.top_by_wall ~k:1 t));
  Alcotest.(check (list string)) "top by allocation keeps allocators first"
    [ "run/place"; "run/sta/prop" ]
    (paths (Report.top_by_alloc ~k:2 t));
  (* heaviest root is run; its heaviest child sta (600 > 300), then prop *)
  Alcotest.(check (list string)) "critical path"
    [ "run"; "run/sta"; "run/sta/prop" ]
    (paths (Report.critical_path t))

let test_report_render_and_json () =
  let t = Lazy.force analyzed in
  let s = Report.render t in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "render mentions %S" needle) true
        (contains s needle))
    [ "span tree"; "critical path"; "prop"; "checkpoint" ];
  match Report.to_json t with
  | Json.Obj kvs ->
      List.iter
        (fun k ->
          Alcotest.(check bool) ("json has " ^ k) true (List.mem_assoc k kvs))
        [ "nodes"; "top_by_self_ns"; "top_by_alloc"; "critical_path"; "events" ]
  | _ -> Alcotest.fail "report json is not an object"

let test_hist_percentile () =
  let bounds = [| 1.; 2.; 4. |] in
  let counts = [| 2; 2; 2; 1 |] in
  let p q = Report.hist_percentile ~bounds ~counts q in
  (* n=7; p50 target 3.5 lands mid second bucket: 1 + (3.5-2)/2 = 1.75 *)
  Alcotest.(check (float 1e-9)) "p50 interpolates" 1.75 (p 50.);
  Alcotest.(check (float 1e-9)) "p0 is lower edge" 0. (p 0.);
  Alcotest.(check (float 1e-6)) "exact at bucket edge" 1. (p (200. /. 7.));
  Alcotest.(check (float 1e-9)) "overflow reports last bound" 4. (p 100.);
  Alcotest.(check bool) "empty histogram is nan" true
    (Float.is_nan
       (Report.hist_percentile ~bounds ~counts:[| 0; 0; 0; 0 |] 50.));
  Alcotest.check_raises "shape mismatch rejected"
    (Invalid_argument
       "Report.hist_percentile: counts must be one longer than bounds")
    (fun () -> ignore (Report.hist_percentile ~bounds ~counts:[| 1 |] 50.))

(* --- Export --- *)

let test_export_chrome_trace () =
  let tr = ok (Trace.of_string synthetic_trace) in
  let doc = Export.chrome_trace tr in
  (* strict JSON all the way through the renderer *)
  (match Json.of_string (Json.to_string ~pretty:true doc) with
  | Ok v -> Alcotest.(check bool) "pretty form round-trips" true (v = doc)
  | Error e -> Alcotest.failf "export is not strict JSON: %s" e);
  let events =
    match Json.member "traceEvents" doc with
    | Some (Json.List l) -> l
    | _ -> Alcotest.fail "no traceEvents list"
  in
  Alcotest.(check int) "all records exported" 7 (List.length events);
  let ts_of e =
    match Json.member "ts" e with
    | Some (Json.Float f) -> f
    | _ -> Alcotest.fail "event without numeric ts"
  in
  let tss = List.map ts_of events in
  Alcotest.(check (float 1e-9)) "ts rebased to zero" 0. (List.hd tss);
  ignore
    (List.fold_left
       (fun prev t ->
         Alcotest.(check bool) "ts sorted ascending" true (t >= prev);
         t)
       neg_infinity tss);
  List.iter
    (fun e ->
      (match Json.member "ph" e with
      | Some (Json.Str ("X" | "i")) -> ()
      | _ -> Alcotest.fail "unexpected phase");
      match Json.member "dur" e with
      | Some (Json.Float d) -> Alcotest.(check bool) "dur >= 0" true (d >= 0.)
      | None -> () (* instants carry no dur *)
      | Some _ -> Alcotest.fail "non-float dur")
    events

(* --- History --- *)

let meta0 =
  {
    History.host = "test-host";
    domains = 2;
    ocaml_version = Sys.ocaml_version;
    timestamp = "2026-08-08T00:00:00Z";
  }

let entry ?(label = "run") ?(cal = 100.) metrics =
  History.make ~meta:meta0 ~calibration_ns:cal ~label metrics

let test_history_roundtrip_and_find () =
  with_temp_file (fun path ->
      Sys.remove path;
      (match History.read path with
      | Ok ([], None) -> ()
      | _ -> Alcotest.fail "missing file must read as empty");
      History.append path (entry ~label:"a" [ ("m", 1.) ]);
      History.append path (entry ~label:"b" [ ("m", 2.) ]);
      History.append path (entry ~label:"a" [ ("m", 3.) ]);
      let entries, note = ok (History.read path) in
      Alcotest.(check (option string)) "clean tail" None note;
      Alcotest.(check int) "three entries" 3 (List.length entries);
      let metric e = List.assoc "m" e.History.metrics in
      let pick sel =
        match History.find entries sel with
        | Some e -> metric e
        | None -> Alcotest.failf "selector %s found nothing" sel
      in
      Alcotest.(check (float 0.)) "last" 3. (pick "last");
      Alcotest.(check (float 0.)) "prev" 2. (pick "prev");
      Alcotest.(check (float 0.)) "@0" 1. (pick "@0");
      Alcotest.(check (float 0.)) "label picks latest" 3. (pick "a");
      Alcotest.(check bool) "unknown label misses" true
        (History.find entries "nope" = None);
      (* a torn final line is dropped with a note, earlier entries survive *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "{\"label\":\"torn";
      close_out oc;
      let entries', note' = ok (History.read path) in
      Alcotest.(check int) "torn tail dropped" 3 (List.length entries');
      Alcotest.(check bool) "torn tail noted" true (note' <> None))

let test_history_diff_gate () =
  (* identical snapshots pass the gate... *)
  let base = entry [ ("sta.total_ns", 1000.); ("mc.total_ns", 500.) ] in
  let same = History.diff ~baseline:base ~current:base in
  Alcotest.(check int) "identical runs have no regressions" 0
    (List.length (History.regressions ~gate_pct:10. same));
  (* ...an artificially slowed metric fails it *)
  let slowed =
    History.diff ~baseline:base
      ~current:(entry [ ("sta.total_ns", 1400.); ("mc.total_ns", 500.) ])
  in
  (match History.regressions ~gate_pct:10. slowed with
  | [ d ] ->
      Alcotest.(check string) "the slowed metric" "sta.total_ns" d.History.metric;
      Alcotest.(check (float 1e-9)) "pct is +40" 40. d.History.pct
  | l -> Alcotest.failf "expected 1 regression, got %d" (List.length l));
  Alcotest.(check bool) "render flags it" true
    (contains (History.render_diff ~gate_pct:10. slowed) "REGRESSED")

let test_history_calibration_normalizes () =
  (* the whole host is 2x slower (calibration 100 -> 200); a metric that
     scaled with it is NOT a regression once normalized *)
  let base = entry ~cal:100. [ ("k.ns", 1000.) ] in
  let cur = entry ~cal:200. [ ("k.ns", 2000.) ] in
  let d = History.diff ~baseline:base ~current:cur in
  Alcotest.(check (float 1e-9)) "cal ratio" 2. d.History.cal_ratio;
  (match d.History.deltas with
  | [ dl ] ->
      Alcotest.(check (float 1e-9)) "raw ratio 2" 2. dl.History.ratio;
      Alcotest.(check (float 1e-9)) "normalized ratio 1" 1. dl.History.norm_ratio
  | l -> Alcotest.failf "expected 1 delta, got %d" (List.length l));
  Alcotest.(check int) "no regression after normalization" 0
    (List.length (History.regressions ~gate_pct:10. d));
  (* disjoint metric sets are reported, not silently dropped *)
  let d2 =
    History.diff
      ~baseline:(entry [ ("old.ns", 1.); ("k.ns", 1.) ])
      ~current:(entry [ ("new.ns", 1.); ("k.ns", 1.) ])
  in
  Alcotest.(check (list string)) "only in baseline" [ "old.ns" ] d2.History.only_base;
  Alcotest.(check (list string)) "only in current" [ "new.ns" ] d2.History.only_cur

(* --- stage-resolved STA slack histograms --- *)

let test_sta_slack_by_depth () =
  let module Netlist = Gap_netlist.Netlist in
  let module Sta = Gap_sta.Sta in
  let module Library = Gap_liberty.Library in
  let module Libgen = Gap_liberty.Libgen in
  let lib = Libgen.make Gap_tech.Tech.asic_025um Libgen.rich in
  let cell base drive = Option.get (Library.find lib ~base ~drive) in
  let nl = Netlist.create ~lib "chain" in
  let cur = ref (Netlist.add_input nl "in") in
  for _ = 1 to 4 do
    let i = Netlist.add_cell nl (cell "INV" 1.) [| !cur |] in
    cur := Netlist.out_net nl i
  done;
  ignore (Netlist.set_output nl "out" !cur);
  let sink = Obs.recorder () in
  Obs.with_sink sink (fun () -> ignore (Sta.analyze nl));
  Alcotest.(check string) "4 gates land in the shallow bucket" "01_04"
    (Sta.depth_bucket 4);
  let by_depth =
    List.filter
      (fun (name, _) ->
        String.length name > 18
        && String.sub name 0 18 = "sta.slack_by_depth")
      (Obs.histograms sink)
  in
  Alcotest.(check bool) "depth-bucketed histograms recorded" true
    (by_depth <> []);
  let n_by_depth =
    List.fold_left (fun acc (_, h) -> acc + h.Obs.n) 0 by_depth
  in
  match Obs.histogram_stats sink "sta.endpoint_slack_ps" with
  | Some h ->
      Alcotest.(check int) "every endpoint is depth-attributed" h.Obs.n
        n_by_depth
  | None -> Alcotest.fail "endpoint slack histogram missing"

let suite =
  [
    ("trace reads recorder output", `Quick, test_trace_reads_recorder_output);
    ("trace tolerates truncated tail", `Quick, test_trace_truncated_tail_tolerated);
    ("trace rejects mid-file garbage", `Quick, test_trace_mid_file_malformed_rejected);
    ("trace schema strictness", `Quick, test_trace_schema_strictness);
    ("report self-time attribution", `Quick, test_report_self_time);
    ("report rankings and critical path", `Quick, test_report_rankings_and_critical_path);
    ("report render and json", `Quick, test_report_render_and_json);
    ("histogram percentiles", `Quick, test_hist_percentile);
    ("chrome trace export", `Quick, test_export_chrome_trace);
    ("history roundtrip and selectors", `Quick, test_history_roundtrip_and_find);
    ("history diff gates regressions", `Quick, test_history_diff_gate);
    ("history calibration normalizes", `Quick, test_history_calibration_normalizes);
    ("sta slack by logic depth", `Quick, test_sta_slack_by_depth);
  ]
