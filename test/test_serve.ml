(* Tests for Gap_serve: wire protocol round-trips, the evaluation daemon
   (byte-identical responses, coalescing, poisoned requests, store reuse
   across restarts, graceful shutdown), and regressions for the concurrency
   bugs the daemon flushed out — lost History.append entries under
   concurrent writers and corrupted Gap_obs span stacks under systhreads. *)

module Protocol = Gap_serve.Protocol
module Server = Gap_serve.Server
module Client = Gap_serve.Client
module Space = Gap_dse.Space
module Eval = Gap_dse.Eval
module Cache = Gap_dse.Cache
module Obs = Gap_obs.Obs
module Json = Gap_obs.Json
module History = Gap_obs.History
module Stage_error = Gap_resilience.Stage_error

let fresh_sock =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "gap_serve_test_%d_%d.sock" (Unix.getpid ()) !n)

let with_server ?store ?(domains = 1) ?(queue_bound = 64) f =
  let path = fresh_sock () in
  let addr = Protocol.Unix_sock path in
  let cfg =
    { (Server.default_config addr) with Server.domains; store; queue_bound }
  in
  let t = Server.create cfg in
  Server.start t;
  Fun.protect
    ~finally:(fun () ->
      Server.stop t;
      if Sys.file_exists path then Sys.remove path)
    (fun () -> f t addr)

let with_client addr f =
  match Client.connect_retry addr with
  | Error e -> Alcotest.fail ("connect: " ^ Client.connect_error_to_string e)
  | Ok cl -> Fun.protect ~finally:(fun () -> Client.close cl) (fun () -> f cl)

(* distinct fresh points per call site so tests never share cache keys *)
let fresh_point =
  let n = ref 0 in
  fun () ->
    incr n;
    {
      Space.baseline with
      Space.sigma_scale = 3.0 +. (0.0001 *. float_of_int !n);
      mc_dies = 64;
    }

(* --- protocol --- *)

let test_protocol_roundtrip () =
  let reqs =
    [
      { Protocol.id = 1; op = Protocol.Eval Space.baseline };
      { Protocol.id = 2; op = Protocol.Sweep "smoke" };
      { Protocol.id = 3; op = Protocol.Pareto "factor-axes" };
      { Protocol.id = 4; op = Protocol.Stats };
      { Protocol.id = 5; op = Protocol.Ping };
      { Protocol.id = 6; op = Protocol.Shutdown };
    ]
  in
  List.iter
    (fun r ->
      match Protocol.parse_request (Json.to_string (Protocol.request_to_json r)) with
      | Ok r' ->
          Alcotest.(check int) "id survives" r.Protocol.id r'.Protocol.id;
          Alcotest.(check string)
            "op survives"
            (Protocol.op_name r.Protocol.op)
            (Protocol.op_name r'.Protocol.op)
      | Error e -> Alcotest.fail e)
    reqs;
  (match Protocol.parse_request "{\"id\":1}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "request without op parsed");
  (match Protocol.parse_request "not json at all" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage parsed");
  let resp = { Protocol.r_id = 7; body = Ok (Json.Str "pong") } in
  (match Protocol.response_of_json (Protocol.response_to_json resp) with
  | Ok r -> Alcotest.(check int) "response id" 7 r.Protocol.r_id
  | Error e -> Alcotest.fail e);
  let err = { Protocol.r_id = 8; body = Error (Protocol.Overloaded "full") } in
  match Protocol.response_of_json (Protocol.response_to_json err) with
  | Ok { Protocol.body = Error (Protocol.Overloaded m); _ } ->
      Alcotest.(check string) "overloaded detail" "full" m
  | _ -> Alcotest.fail "overloaded did not round-trip"

let test_addr_parsing () =
  (match Protocol.addr_of_string "/tmp/x.sock" with
  | Ok (Protocol.Unix_sock p) -> Alcotest.(check string) "unix path" "/tmp/x.sock" p
  | _ -> Alcotest.fail "unix addr");
  (match Protocol.addr_of_string "localhost:9000" with
  | Ok (Protocol.Tcp (h, p)) ->
      Alcotest.(check string) "host" "localhost" h;
      Alcotest.(check int) "port" 9000 p
  | _ -> Alcotest.fail "tcp addr");
  (match Protocol.addr_of_string "9000" with
  | Ok (Protocol.Tcp (h, p)) ->
      Alcotest.(check string) "loopback default" "127.0.0.1" h;
      Alcotest.(check int) "bare port" 9000 p
  | _ -> Alcotest.fail "bare port");
  match Protocol.addr_of_string "nonsense" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "nonsense parsed as addr"

(* --- the daemon --- *)

let test_serve_eval_byte_identical () =
  with_server (fun t addr ->
      with_client addr (fun cl ->
          Alcotest.(check bool) "ping" true (Client.ping cl);
          let p = fresh_point () in
          let expect = Json.to_string (Eval.to_json (Eval.point p)) in
          (match Client.eval cl p with
          | Ok j ->
              Alcotest.(check string)
                "server response = CLI's Eval.to_json, byte for byte" expect
                (Json.to_string j)
          | Error e -> Alcotest.fail (Protocol.err_to_string e));
          (match Client.eval cl p with
          | Ok j ->
              Alcotest.(check string) "second request identical" expect (Json.to_string j)
          | Error e -> Alcotest.fail (Protocol.err_to_string e));
          let s = Server.stats t in
          Alcotest.(check int) "one evaluation" 1 s.Server.evals;
          Alcotest.(check int) "second was a cache hit" 1 s.Server.cache_hits))

let test_concurrent_identical_coalesce () =
  let sink = Obs.recorder () in
  Obs.with_sink sink (fun () ->
      with_server (fun t addr ->
          let n = 16 in
          let p = fresh_point () in
          let results = Array.make n "" in
          let body i () =
            with_client addr (fun cl ->
                match Client.eval cl p with
                | Ok j -> results.(i) <- Json.to_string j
                | Error e -> results.(i) <- "ERR " ^ Protocol.err_to_string e)
          in
          let ths = Array.init n (fun i -> Thread.create (body i) ()) in
          Array.iter Thread.join ths;
          let expect = Json.to_string (Eval.to_json (Eval.point p)) in
          Array.iteri
            (fun i r ->
              Alcotest.(check string)
                (Printf.sprintf "client %d byte-identical" i)
                expect r)
            results;
          let s = Server.stats t in
          Alcotest.(check int)
            "N identical concurrent requests cost exactly 1 evaluation" 1
            s.Server.evals;
          Alcotest.(check int)
            "every other request coalesced or hit the cache" (n - 1)
            (s.Server.coalesced + s.Server.cache_hits);
          Alcotest.(check int)
            "the worker pool saw exactly one job" 1
            (Obs.counter_value sink "dse.pool.jobs")))

let test_poisoned_request_typed_error () =
  with_server (fun t addr ->
      with_client addr (fun cl ->
          (* depth 0 fails Eval.point's validation inside the supervised
             stage: the client must get a typed stage error, not a dead
             server *)
          let poison = { Space.baseline with Space.depth = 0 } in
          let line =
            Json.to_string
              (Protocol.request_to_json { Protocol.id = 9; op = Protocol.Eval poison })
          in
          (match Client.raw_roundtrip cl line with
          | Error e -> Alcotest.fail e
          | Ok resp -> (
              match Json.of_string resp with
              | Error e -> Alcotest.fail e
              | Ok j -> (
                  (match Json.member "ok" j with
                  | Some (Json.Bool false) -> ()
                  | _ -> Alcotest.fail "poisoned request did not fail");
                  match Option.bind (Json.member "error" j) (Json.member "kind") with
                  | Some (Json.Str "stage") -> ()
                  | _ -> Alcotest.fail "error kind is not \"stage\"")));
          Alcotest.(check bool) "server survives the poison" true (Client.ping cl);
          (match Client.eval cl (fresh_point ()) with
          | Ok _ -> ()
          | Error e -> Alcotest.fail (Protocol.err_to_string e));
          let s = Server.stats t in
          Alcotest.(check int) "poison counted as error" 1 s.Server.errors))

let test_malformed_line_survives () =
  with_server (fun _ addr ->
      with_client addr (fun cl ->
          (match Client.raw_roundtrip cl "{{{ not json" with
          | Ok resp -> (
              match Json.of_string resp with
              | Ok j -> (
                  match Option.bind (Json.member "error" j) (Json.member "kind") with
                  | Some (Json.Str "bad-request") -> ()
                  | _ -> Alcotest.fail "expected bad-request")
              | Error e -> Alcotest.fail e)
          | Error e -> Alcotest.fail e);
          Alcotest.(check bool) "connection still usable" true (Client.ping cl)))

let test_sweep_and_pareto_ops () =
  with_server (fun _ addr ->
      with_client addr (fun cl ->
          (match Client.request cl (Protocol.Sweep "smoke") with
          | Ok j ->
              (match Json.member "lattice" j with
              | Some (Json.Int 4) -> ()
              | _ -> Alcotest.fail "smoke lattice is not 4");
              (match Json.member "evaluated" j with
              | Some (Json.Int 4) -> ()
              | _ -> Alcotest.fail "smoke evaluated is not 4")
          | Error e -> Alcotest.fail (Protocol.err_to_string e));
          (match Client.request cl (Protocol.Pareto "smoke") with
          | Ok j -> (
              match Json.member "frontier" j with
              | Some (Json.List (_ :: _)) -> ()
              | _ -> Alcotest.fail "empty frontier")
          | Error e -> Alcotest.fail (Protocol.err_to_string e));
          match Client.request cl (Protocol.Sweep "no-such-preset") with
          | Error (Protocol.Bad_request _) -> ()
          | _ -> Alcotest.fail "unknown preset not rejected"))

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      try Unix.rmdir path with Unix.Unix_error _ -> ()
    end
    else try Sys.remove path with Sys_error _ -> ()

let test_store_survives_restart () =
  let store = Filename.temp_file "gap_serve_store" ".store" in
  Sys.remove store;
  Fun.protect
    ~finally:(fun () -> rm_rf store)
    (fun () ->
      let p = fresh_point () in
      let first =
        with_server ~store (fun _ addr ->
            with_client addr (fun cl ->
                match Client.eval cl p with
                | Ok j -> Json.to_string j
                | Error e -> Alcotest.fail (Protocol.err_to_string e)))
      in
      (match Cache.inspect_store store with
      | Cache.Store i ->
          Alcotest.(check int) "store holds the entry" 1 i.Cache.si_entries
      | Cache.Missing m | Cache.Foreign m ->
          Alcotest.fail ("store unreadable after stop: " ^ m)
      | Cache.Corrupt e ->
          Alcotest.fail
            ("store unreadable after stop: " ^ Stage_error.to_string e));
      with_server ~store (fun t addr ->
          with_client addr (fun cl ->
              (match Client.eval cl p with
              | Ok j ->
                  Alcotest.(check string)
                    "restarted daemon replays byte-identically" first
                    (Json.to_string j)
              | Error e -> Alcotest.fail (Protocol.err_to_string e));
              let s = Server.stats t in
              Alcotest.(check int) "no re-evaluation after restart" 0 s.Server.evals;
              Alcotest.(check int) "served from the reloaded store" 1 s.Server.cache_hits)))

let test_stop_idempotent_and_refuses_new_conns () =
  let path = fresh_sock () in
  let addr = Protocol.Unix_sock path in
  let t = Server.create (Server.default_config addr) in
  Server.start t;
  with_client addr (fun cl -> Alcotest.(check bool) "up" true (Client.ping cl));
  Server.stop t;
  Server.stop t;
  Server.wait t;
  (match Client.connect_retry ~base_delay_s:0.01 ~deadline_s:0.05 addr with
  | Error _ -> ()
  | Ok cl ->
      (* a socket file may linger only if stop failed to unlink it *)
      Client.close cl;
      Alcotest.fail "daemon accepted a connection after stop");
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists path)

let test_shutdown_request_stops_server () =
  let path = fresh_sock () in
  let addr = Protocol.Unix_sock path in
  let t = Server.create (Server.default_config addr) in
  Server.start t;
  with_client addr (fun cl -> Client.shutdown cl);
  (* the shutdown request triggers a graceful stop; wait must return *)
  Server.wait t;
  Alcotest.(check bool) "socket gone after shutdown" false (Sys.file_exists path)

(* --- regressions for the concurrency bugs the daemon flushed out --- *)

(* History.append used to read-modify-write the whole file; two concurrent
   appenders (the daemon plus the CLI) silently lost entries. One O_APPEND
   write per line must lose nothing. *)
let test_history_concurrent_append_loses_nothing () =
  let path = Filename.temp_file "gap_serve_hist" ".jsonl" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let writers = 8 and per_writer = 40 in
      let meta = History.meta_now () in
      let body w () =
        for i = 0 to per_writer - 1 do
          History.append path
            (History.make ~meta ~calibration_ns:0.
               ~label:(Printf.sprintf "w%d" w)
               [ ("i", float_of_int i) ]);
          if i mod 8 = 0 then Thread.yield ()
        done
      in
      let ths = Array.init writers (fun w -> Thread.create (body w) ()) in
      Array.iter Thread.join ths;
      match History.read path with
      | Ok (entries, note) ->
          Alcotest.(check bool) "no truncated tail" true (Option.is_none note);
          Alcotest.(check int)
            "concurrent appenders lose zero entries" (writers * per_writer)
            (List.length entries)
      | Error e -> Alcotest.fail e)

(* Span stacks used to live in Domain.DLS, which systhreads share: two
   threads opening spans concurrently corrupted each other's nesting. Each
   thread must see its own stack — same aggregate whatever the
   interleaving. *)
let test_span_stacks_per_thread () =
  let sink = Obs.recorder () in
  Obs.with_sink sink (fun () ->
      let threads = 4 and reps = 50 in
      let body () =
        for _ = 1 to reps do
          Obs.span "outer" (fun () ->
              Thread.yield ();
              Obs.span "inner" (fun () -> Thread.yield ()))
        done
      in
      let ths = Array.init threads (fun _ -> Thread.create body ()) in
      Array.iter Thread.join ths);
  let spans = Obs.spans sink in
  let calls path =
    match List.find_opt (fun s -> s.Obs.path = path) spans with
    | Some s -> s.Obs.calls
    | None -> 0
  in
  Alcotest.(check int) "outer spans all recorded" 200 (calls "outer");
  Alcotest.(check int)
    "inner spans all nested under outer, never under another thread's frame"
    200 (calls "outer/inner");
  Alcotest.(check int)
    "no span aggregated at a corrupted path" 2 (List.length spans)

(* Cache listings must be deterministic whatever order the hash table
   iterates in. *)
let test_cache_entries_sorted () =
  let c = Cache.create ~capacity:64 () in
  List.iter
    (fun p -> Cache.add c p (Eval.point p))
    (Space.enumerate (Option.get (Space.find_preset "smoke")));
  let keys =
    List.map (fun (p, _) -> Gap_dse.Key.of_point p) (Cache.entries c)
  in
  Alcotest.(check bool)
    "entries sorted by key" true
    (keys = List.sort String.compare keys);
  Alcotest.(check int) "all entries listed" 4 (List.length keys)

let suite =
  [
    ("protocol round-trip", `Quick, test_protocol_roundtrip);
    ("address parsing", `Quick, test_addr_parsing);
    ("eval responses byte-identical to CLI", `Quick, test_serve_eval_byte_identical);
    ("N concurrent identical requests, 1 eval", `Quick, test_concurrent_identical_coalesce);
    ("poisoned request returns typed error", `Quick, test_poisoned_request_typed_error);
    ("malformed line survives", `Quick, test_malformed_line_survives);
    ("sweep and pareto over the wire", `Quick, test_sweep_and_pareto_ops);
    ("store survives restart", `Quick, test_store_survives_restart);
    ("stop idempotent, socket removed", `Quick, test_stop_idempotent_and_refuses_new_conns);
    ("shutdown request stops server", `Quick, test_shutdown_request_stops_server);
    ("history concurrent append", `Quick, test_history_concurrent_append_loses_nothing);
    ("span stacks per thread", `Quick, test_span_stacks_per_thread);
    ("cache entries sorted", `Quick, test_cache_entries_sorted);
  ]
