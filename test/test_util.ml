(* Tests for Gap_util: rng, stats, vec, heap, digraph, table, units. *)

module Rng = Gap_util.Rng
module Stats = Gap_util.Stats

let check_float = Alcotest.(check (float 1e-9))
let check_close msg tolerance expected actual = Alcotest.(check (float tolerance)) msg expected actual

(* --- rng --- *)

let test_rng_deterministic () =
  let a = Rng.create () and b = Rng.create () in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seed_changes_stream () =
  let a = Rng.create ~seed:1L () and b = Rng.create ~seed:2L () in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Rng.int64 a) (Rng.int64 b) then incr same
  done;
  Alcotest.(check bool) "different streams" true (!same < 4)

let test_rng_int_bounds () =
  let rng = Rng.create () in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 7 in
    Alcotest.(check bool) "0 <= v < 7" true (v >= 0 && v < 7)
  done

let test_rng_int_in () =
  let rng = Rng.create () in
  let seen = Array.make 5 false in
  for _ = 1 to 1000 do
    let v = Rng.int_in rng 3 7 in
    Alcotest.(check bool) "3 <= v <= 7" true (v >= 3 && v <= 7);
    seen.(v - 3) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let test_rng_uniformity () =
  let rng = Rng.create () in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Rng.int rng 10 in
    buckets.(i) <- buckets.(i) + 1
  done;
  Array.iter
    (fun c ->
      check_close "bucket within 5% of uniform" 500. (float_of_int n /. 10.) (float_of_int c))
    buckets

let test_rng_normal_moments () =
  let rng = Rng.create () in
  let r = Stats.running () in
  for _ = 1 to 200_000 do
    Stats.add r (Rng.normal rng ~mean:3. ~sigma:2.)
  done;
  check_close "mean" 0.05 3.0 (Stats.mean r);
  check_close "stddev" 0.05 2.0 (Stats.stddev r)

let test_rng_float_range () =
  let rng = Rng.create () in
  for _ = 1 to 1000 do
    let v = Rng.float_in rng 2. 5. in
    Alcotest.(check bool) "in [2,5)" true (v >= 2. && v < 5.)
  done

let test_rng_shuffle_permutes () =
  let rng = Rng.create () in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_split_independent () =
  let parent = Rng.create () in
  let child = Rng.split parent in
  let a = Rng.int64 parent and b = Rng.int64 child in
  Alcotest.(check bool) "parent and child differ" true (not (Int64.equal a b))

(* --- stats --- *)

let test_stats_running_vs_direct () =
  let xs = [| 1.; 2.; 3.; 4.; 10. |] in
  let r = Stats.running () in
  Array.iter (Stats.add r) xs;
  check_float "mean" (Stats.mean_of xs) (Stats.mean r);
  check_float "stddev" (Stats.stddev_of xs) (Stats.stddev r);
  check_float "min" 1. (Stats.running_min r);
  check_float "max" 10. (Stats.running_max r);
  Alcotest.(check int) "count" 5 (Stats.count r)

let test_stats_percentile () =
  let xs = [| 5.; 1.; 3.; 2.; 4. |] in
  check_float "p0" 1. (Stats.percentile xs 0.);
  check_float "p100" 5. (Stats.percentile xs 100.);
  check_float "median" 3. (Stats.median xs);
  check_float "p25" 2. (Stats.percentile xs 25.);
  check_float "p50 interpolated" 2.5 (Stats.percentile [| 1.; 2.; 3.; 4. |] 50.)

let test_stats_histogram () =
  let xs = Array.init 100 (fun i -> float_of_int i) in
  let h = Stats.histogram ~bins:10 xs in
  Alcotest.(check int) "bin count" 10 (Array.length h);
  let total = Array.fold_left (fun acc (_, _, c) -> acc + c) 0 h in
  Alcotest.(check int) "all samples bucketed" 100 total

let test_stats_correlation () =
  let xs = Array.init 50 (fun i -> float_of_int i) in
  let ys = Array.map (fun x -> (2. *. x) +. 1.) xs in
  check_close "perfect correlation" 1e-9 1.0 (Stats.correlation xs ys);
  let ys_neg = Array.map (fun x -> -.x) xs in
  check_close "anti correlation" 1e-9 (-1.0) (Stats.correlation xs ys_neg)

let test_stats_linear_fit () =
  let xs = Array.init 20 (fun i -> float_of_int i) in
  let ys = Array.map (fun x -> (3. *. x) -. 7. ) xs in
  let slope, intercept = Stats.linear_fit xs ys in
  check_close "slope" 1e-9 3. slope;
  check_close "intercept" 1e-9 (-7.) intercept

let test_stats_rejects_bad_input () =
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument msg ->
        (* the message names the offending function *)
        Alcotest.(check bool)
          (Printf.sprintf "%s names itself (got %S)" name msg)
          true
          (String.length msg >= String.length name
          && String.sub msg 0 (String.length name) = name)
    | _ -> Alcotest.failf "%s accepted bad input" name
  in
  expect_invalid "Gap_util.Stats.mean_of" (fun () -> Stats.mean_of [||]);
  expect_invalid "Gap_util.Stats.stddev_of" (fun () -> Stats.stddev_of [||]);
  expect_invalid "Gap_util.Stats.percentile_sorted" (fun () -> Stats.percentile [||] 50.);
  expect_invalid "Gap_util.Stats.percentile_sorted" (fun () -> Stats.percentile [| 1. |] 101.);
  expect_invalid "Gap_util.Stats.percentile_sorted" (fun () -> Stats.percentile [| 1. |] (-1.));
  expect_invalid "Gap_util.Stats.histogram" (fun () -> Stats.histogram ~bins:0 [| 1. |]);
  expect_invalid "Gap_util.Stats.histogram" (fun () -> Stats.histogram ~bins:4 [||]);
  expect_invalid "Gap_util.Stats.correlation" (fun () -> Stats.correlation [| 1.; 2. |] [| 1. |]);
  expect_invalid "Gap_util.Stats.correlation" (fun () -> Stats.correlation [| 1. |] [| 1. |]);
  expect_invalid "Gap_util.Stats.linear_fit" (fun () -> Stats.linear_fit [| 1. |] [| 1. |])

(* --- vec --- *)

let test_vec_basic () =
  let v = Gap_util.Vec.create () in
  Alcotest.(check bool) "empty" true (Gap_util.Vec.is_empty v);
  let ids = List.init 100 (fun i -> Gap_util.Vec.push v (i * 2)) in
  Alcotest.(check (list int)) "stable indices" (List.init 100 Fun.id) ids;
  Alcotest.(check int) "length" 100 (Gap_util.Vec.length v);
  Alcotest.(check int) "get" 84 (Gap_util.Vec.get v 42);
  Gap_util.Vec.set v 42 (-1);
  Alcotest.(check int) "set" (-1) (Gap_util.Vec.get v 42);
  Alcotest.(check int) "fold" ((99 * 100) - 84 - 1) (Gap_util.Vec.fold ( + ) 0 v)

let test_vec_bounds () =
  let v = Gap_util.Vec.of_array [| 1; 2; 3 |] in
  Alcotest.check_raises "oob get" (Invalid_argument "Vec: index out of bounds") (fun () ->
      ignore (Gap_util.Vec.get v 3))

let test_vec_find_index () =
  let v = Gap_util.Vec.of_array [| 1; 5; 9 |] in
  Alcotest.(check (option int)) "found" (Some 1) (Gap_util.Vec.find_index (fun x -> x = 5) v);
  Alcotest.(check (option int)) "missing" None (Gap_util.Vec.find_index (fun x -> x = 7) v)

let test_vec_capacity () =
  (* a pre-sized vec behaves exactly like a default one, before, at, and
     past the requested capacity *)
  let v = Gap_util.Vec.create ~capacity:1000 () in
  Alcotest.(check bool) "starts empty" true (Gap_util.Vec.is_empty v);
  for i = 0 to 1499 do
    ignore (Gap_util.Vec.push v (i * 3))
  done;
  Alcotest.(check int) "length" 1500 (Gap_util.Vec.length v);
  Alcotest.(check int) "first" 0 (Gap_util.Vec.get v 0);
  Alcotest.(check int) "at capacity edge" (999 * 3) (Gap_util.Vec.get v 999);
  Alcotest.(check int) "past capacity" (1499 * 3) (Gap_util.Vec.get v 1499);
  (* degenerate capacities are clamped, not fatal *)
  let w = Gap_util.Vec.create ~capacity:0 () in
  ignore (Gap_util.Vec.push w 42);
  Alcotest.(check int) "zero capacity still works" 42 (Gap_util.Vec.get w 0)

(* --- heap --- *)

let test_heap_sorts () =
  let h = Gap_util.Heap.of_array ~cmp:compare [| 5; 1; 4; 1; 3; 9; 2 |] in
  Alcotest.(check (list int)) "drain sorted" [ 1; 1; 2; 3; 4; 5; 9 ] (Gap_util.Heap.drain h)

let test_heap_peek_pop () =
  let h = Gap_util.Heap.create ~cmp:compare in
  Alcotest.(check (option int)) "empty peek" None (Gap_util.Heap.peek h);
  Gap_util.Heap.push h 3;
  Gap_util.Heap.push h 1;
  Alcotest.(check (option int)) "peek min" (Some 1) (Gap_util.Heap.peek h);
  Alcotest.(check (option int)) "pop min" (Some 1) (Gap_util.Heap.pop h);
  Alcotest.(check int) "length" 1 (Gap_util.Heap.length h)

let heap_property =
  QCheck.Test.make ~name:"heap drain is sorted" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Gap_util.Heap.of_array ~cmp:compare (Array.of_list xs) in
      let drained = Gap_util.Heap.drain h in
      drained = List.sort compare xs)

(* --- digraph --- *)

let diamond () =
  let g = Gap_util.Digraph.create () in
  Gap_util.Digraph.add_nodes g 4;
  Gap_util.Digraph.add_edge g 0 1;
  Gap_util.Digraph.add_edge g 0 2;
  Gap_util.Digraph.add_edge g 1 3;
  Gap_util.Digraph.add_edge g 2 3;
  g

let test_digraph_topo () =
  let g = diamond () in
  match Gap_util.Digraph.topo_order g with
  | None -> Alcotest.fail "diamond is acyclic"
  | Some order ->
      let pos = Array.make 4 0 in
      Array.iteri (fun i v -> pos.(v) <- i) order;
      Alcotest.(check bool) "edges go forward" true
        (pos.(0) < pos.(1) && pos.(0) < pos.(2) && pos.(1) < pos.(3) && pos.(2) < pos.(3))

let test_digraph_cycle () =
  let g = diamond () in
  Gap_util.Digraph.add_edge g 3 0;
  Alcotest.(check bool) "cyclic" false (Gap_util.Digraph.is_acyclic g)

let test_digraph_find_cycle () =
  Alcotest.(check bool) "diamond has no cycle" true
    (Gap_util.Digraph.find_cycle (diamond ()) = None);
  let g = diamond () in
  Gap_util.Digraph.add_edge g 3 1;
  match Gap_util.Digraph.find_cycle g with
  | None -> Alcotest.fail "cycle not found"
  | Some cycle ->
      (* the witness is a genuine closed walk: consecutive edges exist and the
         last node loops back to the first *)
      Alcotest.(check bool) "nonempty" true (cycle <> []);
      let arr = Array.of_list cycle in
      let n = Array.length arr in
      for k = 0 to n - 1 do
        let src = arr.(k) and dst = arr.((k + 1) mod n) in
        Alcotest.(check bool)
          (Printf.sprintf "edge %d -> %d exists" src dst)
          true
          (List.mem_assoc dst (Gap_util.Digraph.succ g src))
      done

let test_digraph_longest_path () =
  let g = Gap_util.Digraph.create () in
  Gap_util.Digraph.add_nodes g 3;
  Gap_util.Digraph.add_edge g 0 1;
  Gap_util.Digraph.add_edge g 1 2;
  Gap_util.Digraph.add_edge g 0 2;
  match Gap_util.Digraph.longest_path g ~node_delay:(fun _ -> 2.) with
  | None -> Alcotest.fail "acyclic"
  | Some arr ->
      check_float "source" 2. arr.(0);
      check_float "middle" 4. arr.(1);
      check_float "sink takes long way" 6. arr.(2)

let test_digraph_bellman_ford () =
  let g = Gap_util.Digraph.create () in
  Gap_util.Digraph.add_nodes g 3;
  Gap_util.Digraph.add_edge g ~weight:5. 0 1;
  Gap_util.Digraph.add_edge g ~weight:(-2.) 1 2;
  Gap_util.Digraph.add_edge g ~weight:10. 0 2;
  (match Gap_util.Digraph.bellman_ford g ~source:0 with
  | None -> Alcotest.fail "no negative cycle"
  | Some d ->
      check_float "shortest via middle" 3. d.(2);
      check_float "direct" 5. d.(1))

let test_digraph_negative_cycle () =
  let g = Gap_util.Digraph.create () in
  Gap_util.Digraph.add_nodes g 2;
  Gap_util.Digraph.add_edge g ~weight:(-1.) 0 1;
  Gap_util.Digraph.add_edge g ~weight:(-1.) 1 0;
  Alcotest.(check bool) "negative cycle detected" true
    (Gap_util.Digraph.bellman_ford g ~source:0 = None);
  Alcotest.(check bool) "infeasible potentials" true
    (Gap_util.Digraph.feasible_potentials g = None)

let test_digraph_feasible_potentials () =
  (* x1 - x0 <= 1, x0 - x1 <= 2 is satisfiable *)
  let g = Gap_util.Digraph.create () in
  Gap_util.Digraph.add_nodes g 2;
  Gap_util.Digraph.add_edge g ~weight:1. 0 1;
  Gap_util.Digraph.add_edge g ~weight:2. 1 0;
  match Gap_util.Digraph.feasible_potentials g with
  | None -> Alcotest.fail "satisfiable system"
  | Some x ->
      Alcotest.(check bool) "constraints hold" true
        (x.(1) -. x.(0) <= 1. +. 1e-9 && x.(0) -. x.(1) <= 2. +. 1e-9)

let test_digraph_scc () =
  let g = Gap_util.Digraph.create () in
  Gap_util.Digraph.add_nodes g 5;
  (* cycle 0-1-2, then 3 -> 4 *)
  Gap_util.Digraph.add_edge g 0 1;
  Gap_util.Digraph.add_edge g 1 2;
  Gap_util.Digraph.add_edge g 2 0;
  Gap_util.Digraph.add_edge g 2 3;
  Gap_util.Digraph.add_edge g 3 4;
  let comp = Gap_util.Digraph.scc g in
  Alcotest.(check bool) "cycle in one component" true
    (comp.(0) = comp.(1) && comp.(1) = comp.(2));
  Alcotest.(check bool) "others separate" true (comp.(3) <> comp.(0) && comp.(4) <> comp.(3))

let csr_matches_reference_property =
  (* the CSR-backed topo_order/longest_path must agree exactly — including
     Kahn tie-breaking, hence array equality — with the list-based reference
     implementations, on DAGs and on cyclic graphs (both reject) *)
  QCheck.Test.make ~name:"digraph csr matches list reference" ~count:200
    QCheck.(triple (int_range 1 30) (small_list (pair small_nat small_nat)) bool)
    (fun (n, pairs, acyclic_only) ->
      let g = Gap_util.Digraph.create () in
      Gap_util.Digraph.add_nodes g n;
      List.iter
        (fun (a, b) ->
          let u = a mod n and v = b mod n in
          if u < v || ((not acyclic_only) && u <> v) then
            Gap_util.Digraph.add_edge g ~weight:(float_of_int ((a + b) mod 7)) u v)
        pairs;
      let node_delay i = float_of_int ((i mod 5) + 1) in
      Gap_util.Digraph.topo_order g = Gap_util.Digraph.topo_order_ref g
      && Gap_util.Digraph.longest_path g ~node_delay
         = Gap_util.Digraph.longest_path_ref g ~node_delay)

(* --- table / units --- *)

let test_table_render () =
  let s = Gap_util.Table.render ~header:[ "a"; "b" ] [ [ "x"; "12" ]; [ "yy"; "3" ] ] in
  let contains sub =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "x present" true (contains "x");
  Alcotest.(check bool) "12 present" true (contains "12");
  Alcotest.(check bool) "header present" true (contains "| a");
  Alcotest.(check string) "ratio fmt" "x3.85" (Gap_util.Table.fmt_ratio 3.85);
  Alcotest.(check string) "pct fmt" "25.0%" (Gap_util.Table.fmt_pct 0.25)

let test_table_to_csv () =
  let csv =
    Gap_util.Table.to_csv ~header:[ "name"; "value" ]
      [ [ "plain"; "1" ]; [ "com,ma"; "quo\"te" ]; [ "line\nbreak"; "" ] ]
  in
  Alcotest.(check string)
    "quoted, doubled, newline preserved"
    "\"name\",\"value\"\n\"plain\",\"1\"\n\"com,ma\",\"quo\"\"te\"\n\"line\nbreak\",\"\"\n"
    csv;
  Alcotest.(check string) "no header, no rows" "" (Gap_util.Table.to_csv [])

(* --- crc32 --- *)

module Crc32 = Gap_util.Crc32

let test_crc32_reference_vectors () =
  (* zlib/PNG convention known-answer vectors *)
  Alcotest.(check int) "empty" 0 (Crc32.string "");
  Alcotest.(check int) "check value" 0xCBF43926 (Crc32.string "123456789");
  Alcotest.(check int) "single a" 0xE8B7BE43 (Crc32.string "a");
  Alcotest.(check int) "abc" 0x352441C2 (Crc32.string "abc");
  Alcotest.(check int) "quick brown fox" 0x414FA339
    (Crc32.string "The quick brown fox jumps over the lazy dog")

let test_crc32_incremental_matches_whole () =
  let s = "123456789" in
  let split = Crc32.update (Crc32.update 0 s ~pos:0 ~len:4) s ~pos:4 ~len:5 in
  Alcotest.(check int) "split update = whole" (Crc32.string s) split;
  let b = Bytes.of_string ("xx" ^ s ^ "yy") in
  Alcotest.(check int) "bytes slice = string" (Crc32.string s)
    (Crc32.bytes b ~pos:2 ~len:9);
  Alcotest.check_raises "bad range raises"
    (Invalid_argument "Crc32.update") (fun () ->
      ignore (Crc32.bytes b ~pos:10 ~len:100))

let crc32_detects_single_bit_flips_property =
  QCheck.Test.make ~name:"crc32 detects any single bit flip" ~count:200
    QCheck.(pair (string_of_size (QCheck.Gen.int_range 1 64)) (pair small_nat small_nat))
    (fun (s, (byte_seed, bit)) ->
      let b = Bytes.of_string s in
      let i = byte_seed mod Bytes.length b in
      Bytes.set b i
        (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl (bit mod 8))));
      Crc32.string (Bytes.to_string b) <> Crc32.string s)

(* --- hash: FNV-1a 64 --- *)

module Hash = Gap_util.Hash

let test_hash_reference_vectors () =
  (* published FNV-1a 64-bit vectors *)
  Alcotest.(check int64) "empty = offset basis" 0xcbf29ce484222325L (Hash.of_string "");
  Alcotest.(check int64) "a" 0xaf63dc4c8601ec8cL (Hash.of_string "a");
  Alcotest.(check int64) "foobar" 0x85944171f73967e8L (Hash.of_string "foobar");
  Alcotest.(check string) "hex rendering" "cbf29ce484222325" (Hash.to_hex Hash.seed)

let test_hash_combinators () =
  let h1 = Hash.(string (string seed "ab") "c") in
  let h2 = Hash.(string (string seed "a") "bc") in
  Alcotest.(check bool) "field boundaries matter" true (h1 <> h2);
  Alcotest.(check int64) "int = int64 of same value"
    Hash.(int seed 42) Hash.(int64 seed 42L);
  Alcotest.(check int64) "negative zero canonicalized"
    Hash.(float seed 0.) Hash.(float seed (-0.));
  Alcotest.(check int64) "nan canonicalized"
    Hash.(float seed Float.nan) Hash.(float seed (0. /. 0.));
  Alcotest.(check bool) "bool arms differ" true
    Hash.(bool seed true <> bool seed false);
  Alcotest.(check bool) "order sensitive" true
    Hash.(int (int seed 1) 2 <> int (int seed 2) 1)

let hash_field_split_property =
  QCheck.Test.make ~name:"hash distinguishes field splits" ~count:300
    QCheck.(quad small_string small_string small_string small_string)
    (fun (a, b, a', b') ->
      QCheck.assume ((a, b) <> (a', b'));
      Hash.(string (string seed a) b) <> Hash.(string (string seed a') b'))

let hash_stability_property =
  QCheck.Test.make ~name:"hash is a pure function of the byte sequence" ~count:200
    QCheck.(small_list small_string)
    (fun fields ->
      let fold () = List.fold_left Hash.string Hash.seed fields in
      Int64.equal (fold ()) (fold ()))

(* --- unboxed sample buffers / batched rng --- *)

let test_buf_roundtrip_and_aggregates () =
  let xs = [| 5.; 1.; 3.; 2.; 4. |] in
  let b = Stats.buf_of_array xs in
  Alcotest.(check int) "length" 5 (Stats.buf_length b);
  Alcotest.(check (array (float 0.))) "roundtrip" xs (Stats.buf_to_array b);
  check_float "mean" (Stats.mean_of xs) (Stats.buf_mean b);
  check_float "min" 1. (Stats.buf_min b);
  check_float "max" 5. (Stats.buf_max b);
  Alcotest.(check int) "count_ge" 3 (Stats.buf_count_ge b 3.);
  Alcotest.(check int) "count_ge none" 0 (Stats.buf_count_ge b 6.);
  (* the copy is independent: selecting on it leaves the original alone *)
  let c = Stats.buf_copy b in
  ignore (Stats.buf_select c 0);
  Alcotest.(check (array (float 0.))) "original untouched" xs (Stats.buf_to_array b)

let test_buf_select_edges () =
  let b = Stats.buf_of_array [| 5.; 1.; 3.; 2.; 4. |] in
  check_float "k=0 is min" 1. (Stats.buf_select b 0);
  check_float "k=4 is max" 5. (Stats.buf_select b 4);
  check_float "k=2 is median" 3. (Stats.buf_select b 2);
  let d = Stats.buf_of_array [| 2.; 2.; 1.; 2. |] in
  check_float "duplicates" 2. (Stats.buf_select d 2);
  check_float "singleton" 7. (Stats.buf_select (Stats.buf_of_array [| 7. |]) 0);
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s accepted bad input" name
  in
  expect_invalid "empty buffer" (fun () -> Stats.buf_select (Stats.buf_create 0) 0);
  expect_invalid "rank too high" (fun () -> Stats.buf_select (Stats.buf_of_array [| 1. |]) 1);
  expect_invalid "negative rank" (fun () -> Stats.buf_select (Stats.buf_of_array [| 1. |]) (-1));
  expect_invalid "nan poisons selection" (fun () ->
      ignore (Stats.buf_select (Stats.buf_of_array (Array.make 8 Float.nan)) 4));
  expect_invalid "percentile out of range" (fun () ->
      Stats.buf_percentile (Stats.buf_of_array [| 1. |]) 101.)

let buf_percentile_matches_sort_property =
  (* streaming (quickselect) percentiles and single-pass aggregates must
     agree bit for bit with the sort-based reference path, repeated-query
     reordering included *)
  QCheck.Test.make ~name:"buf percentile/mean match sorted reference" ~count:300
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 80) (float_range (-1e6) 1e6))
        (small_list (int_bound 100)))
    (fun (xs, ps) ->
      let arr = Array.of_list xs in
      let b = Stats.buf_of_array arr in
      let sorted = Array.copy arr in
      Array.sort Float.compare sorted;
      Stats.buf_mean b = Stats.mean_of arr
      && Stats.buf_min b = Stats.minimum arr
      && Stats.buf_max b = Stats.maximum arr
      && List.for_all
           (fun pi ->
             let p = float_of_int pi in
             Stats.buf_percentile b p = Stats.percentile_sorted sorted p)
           (0 :: 50 :: 100 :: ps))

let normal_fill_matches_scalar_property =
  (* the batched fill must replay the exact scalar [normal] stream bit for
     bit across consecutive fills of assorted lengths — even, odd (leaving
     a cached spare), and zero — at arbitrary buffer offsets *)
  QCheck.Test.make ~name:"batched normal fill matches scalar draws" ~count:100
    QCheck.(pair small_nat (list_of_size Gen.(1 -- 6) (int_bound 33)))
    (fun (seed, lens) ->
      let a = Rng.create ~seed:(Int64.of_int seed) () in
      let b = Rng.create ~seed:(Int64.of_int seed) () in
      List.for_all
        (fun len ->
          let buf = Array.make (len + 2) 42.0 in
          Rng.normal_std_fill a buf ~pos:1 ~len;
          let ok = ref (buf.(0) = 42.0 && buf.(len + 1) = 42.0) in
          for i = 1 to len do
            if buf.(i) <> Rng.normal b ~mean:0. ~sigma:1. then ok := false
          done;
          !ok)
        lens)

let test_normal_fill_rejects_bad_range () =
  let rng = Rng.create () in
  let buf = Array.make 4 0. in
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s accepted bad range" name
  in
  expect_invalid "negative pos" (fun () -> Rng.normal_std_fill rng buf ~pos:(-1) ~len:2);
  expect_invalid "negative len" (fun () -> Rng.normal_std_fill rng buf ~pos:0 ~len:(-1));
  expect_invalid "past end" (fun () -> Rng.normal_std_fill rng buf ~pos:2 ~len:3)

let test_units () =
  check_float "ps<->ns" 1500. (Gap_util.Units.ps_of_ns 1.5);
  check_float "mhz of period" 1000. (Gap_util.Units.mhz_of_period_ps 1000.);
  check_float "roundtrip" 250. (Gap_util.Units.mhz_of_period_ps (Gap_util.Units.period_ps_of_mhz 250.));
  Alcotest.(check string) "freq fmt" "1.00 GHz" (Gap_util.Units.pp_freq_mhz 1000.);
  Alcotest.(check string) "time fmt" "4.20 ns" (Gap_util.Units.pp_time_ps 4200.)

let suite =
  [
    ("rng deterministic", `Quick, test_rng_deterministic);
    ("rng seed changes stream", `Quick, test_rng_seed_changes_stream);
    ("rng int bounds", `Quick, test_rng_int_bounds);
    ("rng int_in", `Quick, test_rng_int_in);
    ("rng uniformity", `Quick, test_rng_uniformity);
    ("rng normal moments", `Quick, test_rng_normal_moments);
    ("rng float range", `Quick, test_rng_float_range);
    ("rng shuffle permutes", `Quick, test_rng_shuffle_permutes);
    ("rng split independent", `Quick, test_rng_split_independent);
    ("stats running vs direct", `Quick, test_stats_running_vs_direct);
    ("stats percentile", `Quick, test_stats_percentile);
    ("stats histogram", `Quick, test_stats_histogram);
    ("stats correlation", `Quick, test_stats_correlation);
    ("stats linear fit", `Quick, test_stats_linear_fit);
    ("stats rejects bad input", `Quick, test_stats_rejects_bad_input);
    ("vec basics", `Quick, test_vec_basic);
    ("vec bounds", `Quick, test_vec_bounds);
    ("vec find_index", `Quick, test_vec_find_index);
    ("vec capacity", `Quick, test_vec_capacity);
    ("heap sorts", `Quick, test_heap_sorts);
    ("heap peek/pop", `Quick, test_heap_peek_pop);
    QCheck_alcotest.to_alcotest heap_property;
    ("digraph topo", `Quick, test_digraph_topo);
    ("digraph cycle", `Quick, test_digraph_cycle);
    ("digraph find_cycle witness", `Quick, test_digraph_find_cycle);
    ("digraph longest path", `Quick, test_digraph_longest_path);
    ("digraph bellman-ford", `Quick, test_digraph_bellman_ford);
    ("digraph negative cycle", `Quick, test_digraph_negative_cycle);
    ("digraph feasible potentials", `Quick, test_digraph_feasible_potentials);
    ("digraph scc", `Quick, test_digraph_scc);
    QCheck_alcotest.to_alcotest csr_matches_reference_property;
    ("table render", `Quick, test_table_render);
    ("table to_csv", `Quick, test_table_to_csv);
    ("crc32 reference vectors", `Quick, test_crc32_reference_vectors);
    ("crc32 incremental", `Quick, test_crc32_incremental_matches_whole);
    QCheck_alcotest.to_alcotest crc32_detects_single_bit_flips_property;
    ("hash reference vectors", `Quick, test_hash_reference_vectors);
    ("hash combinators", `Quick, test_hash_combinators);
    QCheck_alcotest.to_alcotest hash_field_split_property;
    QCheck_alcotest.to_alcotest hash_stability_property;
    ("buf roundtrip and aggregates", `Quick, test_buf_roundtrip_and_aggregates);
    ("buf select edges", `Quick, test_buf_select_edges);
    QCheck_alcotest.to_alcotest buf_percentile_matches_sort_property;
    QCheck_alcotest.to_alcotest normal_fill_matches_scalar_property;
    ("normal fill rejects bad range", `Quick, test_normal_fill_rejects_bad_range);
    ("units", `Quick, test_units);
  ]
