(* Tests for Gap_netlist.Check: one injected defect per rule, the stage-gate
   machinery, and the end-to-end property that every experiment flow is
   lint-clean and byte-identical with checking enabled. *)

module Netlist = Gap_netlist.Netlist
module Check = Gap_netlist.Check
module Library = Gap_liberty.Library
module Libgen = Gap_liberty.Libgen
module Obs = Gap_obs.Obs
module Exp = Gap_experiments.Exp
module Registry = Gap_experiments.Registry

let lib = lazy (Libgen.make Gap_tech.Tech.asic_025um Libgen.rich)
let cell base drive = Option.get (Library.find (Lazy.force lib) ~base ~drive)

let fired ds rule = List.filter (fun d -> d.Check.rule = rule) ds

let assert_fires ?(placed = false) ?config nl rule severity =
  let ds =
    match config with
    | Some c ->
        if placed then Check.check_placed ~config:c nl else Check.check ~config:c nl
    | None -> if placed then Check.check_placed nl else Check.check nl
  in
  match fired ds rule with
  | [] ->
      Alcotest.failf "rule %s did not fire; got: %s" rule
        (String.concat ", " (List.map (fun d -> d.Check.rule) ds))
  | d :: _ ->
      Alcotest.(check string) "severity"
        (Check.severity_string severity)
        (Check.severity_string d.Check.severity)

let assert_silent ds rule =
  Alcotest.(check int) (rule ^ " silent") 0 (List.length (fired ds rule))

(* a small clean netlist: y = !(!a) *)
let clean_pair () =
  let nl = Netlist.create ~lib:(Lazy.force lib) "pair" in
  let a = Netlist.add_input nl "a" in
  let i1 = Netlist.add_cell nl (cell "INV" 1.) [| a |] in
  let i2 = Netlist.add_cell nl (cell "INV" 1.) [| Netlist.out_net nl i1 |] in
  ignore (Netlist.set_output nl "y" (Netlist.out_net nl i2));
  (nl, i1, i2)

let test_rule_catalog () =
  Alcotest.(check int) "thirteen rules" 13 (List.length Check.rules);
  let ids = List.map (fun (id, _, _) -> id) Check.rules in
  Alcotest.(check int) "ids unique" (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_clean_netlist () =
  let nl, _, _ = clean_pair () in
  Alcotest.(check bool) "clean" true (Check.is_clean nl);
  Alcotest.(check int) "no errors" 0 (List.length (Check.errors (Check.check nl)))

let test_undriven_and_floating () =
  let nl, _, _ = clean_pair () in
  let hole = Netlist.add_net nl "hole" in
  let sink = Netlist.add_cell nl (cell "INV" 1.) [| hole |] in
  let ds = Check.check nl in
  assert_fires nl "undriven-net" Check.Error;
  assert_fires nl "floating-input" Check.Error;
  (* the floating-input witness pinpoints the consuming pin *)
  match fired ds "floating-input" with
  | { Check.witness = Check.Pin { inst; pin; _ }; _ } :: _ ->
      Alcotest.(check int) "consumer instance" sink inst;
      Alcotest.(check int) "pin" 0 pin
  | _ -> Alcotest.fail "floating-input witness is not a pin"

let test_output_undriven () =
  let nl, _, _ = clean_pair () in
  ignore (Netlist.set_output nl "z" (Netlist.add_net nl "loose"));
  assert_fires nl "output-undriven" Check.Error

let test_multi_driver_stale_annotation () =
  let nl, i1, _ = clean_pair () in
  (* a net annotated as driven by i1, which actually drives a different net *)
  let ghost = Netlist.add_net nl "ghost" in
  Netlist.unsafe_set_driver nl ghost (Netlist.From_cell i1);
  let ds = Check.check nl in
  assert_fires nl "multi-driver" Check.Error;
  assert_silent ds "undriven-net"

let test_multi_driver_disagreeing_annotation () =
  let nl, i1, _ = clean_pair () in
  (* i1 claims its output net but the annotation says Undriven *)
  Netlist.unsafe_set_driver nl (Netlist.out_net nl i1) Netlist.Undriven;
  let ds = Check.check nl in
  assert_fires nl "multi-driver" Check.Error;
  (* a claimed net is not undriven, even with a broken annotation *)
  assert_silent ds "undriven-net"

let test_arity_mismatch () =
  let nl, i1, _ = clean_pair () in
  let a = Netlist.input_net nl 0 in
  Netlist.unsafe_set_fanins nl i1 [| a; a |];
  assert_fires nl "arity-mismatch" Check.Error

let test_comb_cycle () =
  let nl, i1, i2 = clean_pair () in
  (* close the loop: i1's input becomes i2's output *)
  Netlist.rewire_pin nl ~inst:i1 ~pin:0 (Netlist.out_net nl i2);
  let ds = Check.check nl in
  assert_fires nl "comb-cycle" Check.Error;
  (match fired ds "comb-cycle" with
  | { Check.witness = Check.Cycle { insts; names }; _ } :: _ ->
      Alcotest.(check bool) "cycle contains i1" true (List.mem i1 insts);
      Alcotest.(check bool) "cycle contains i2" true (List.mem i2 insts);
      Alcotest.(check int) "names match insts" (List.length insts)
        (List.length names)
  | _ -> Alcotest.fail "comb-cycle witness is not a cycle");
  (* the typed exception carries the same loop *)
  match Netlist.combinational_cycle nl with
  | None -> Alcotest.fail "combinational_cycle missed the loop"
  | Some cycle -> (
      Alcotest.(check bool) "cycle nonempty" true (cycle <> []);
      try
        ignore (Netlist.topo_instances nl);
        Alcotest.fail "topo_instances did not raise"
      with Netlist.Combinational_cycle path ->
        Alcotest.(check bool) "exception carries the cycle" true (path <> []))

let test_bad_parasitic () =
  let nl, i1, _ = clean_pair () in
  Netlist.set_wire_cap_ff nl (Netlist.out_net nl i1) (-1.);
  assert_fires nl "bad-parasitic" Check.Error;
  let nl2, j1, _ = clean_pair () in
  Netlist.set_wire_delay_ps nl2 (Netlist.out_net nl2 j1) Float.nan;
  assert_fires nl2 "bad-parasitic" Check.Error

let test_const_output () =
  let nl, _, _ = clean_pair () in
  ignore (Netlist.set_output nl "tied" (Netlist.add_const nl true));
  assert_fires nl "const-output" Check.Warning

let test_max_fanout () =
  let nl = Netlist.create ~lib:(Lazy.force lib) "fan" in
  let a = Netlist.add_input nl "a" in
  for k = 0 to 2 do
    let i = Netlist.add_cell nl (cell "INV" 1.) [| a |] in
    ignore (Netlist.set_output nl (Printf.sprintf "y%d" k) (Netlist.out_net nl i))
  done;
  let config = { Check.default_config with Check.max_fanout = Some 2 } in
  assert_fires ~config nl "max-fanout" Check.Warning;
  (* under the default limit the same netlist is quiet *)
  assert_silent (Check.check nl) "max-fanout"

let test_max_cap () =
  let nl, _, _ = clean_pair () in
  (* i1 drives one INV pin: load ~= one input cap, limit = 0.5 caps *)
  let config =
    { Check.default_config with Check.max_electrical_effort = Some 0.5 }
  in
  assert_fires ~config nl "max-cap" Check.Warning;
  assert_silent (Check.check nl) "max-cap"

let test_dangling_net_info () =
  let nl = Netlist.create ~lib:(Lazy.force lib) "dangle" in
  let a = Netlist.add_input nl "a" in
  ignore (Netlist.add_cell nl (cell "INV" 1.) [| a |]);
  assert_fires nl "dangling-net" Check.Info;
  Alcotest.(check bool) "still clean" true (Check.is_clean nl)

let test_unplaced_instance () =
  let nl, i1, _ = clean_pair () in
  Netlist.place nl i1 ~x_um:1. ~y_um:1.;
  (* i2 has no location *)
  assert_fires ~placed:true nl "unplaced-instance" Check.Error

let test_out_of_core () =
  let nl, i1, i2 = clean_pair () in
  Netlist.place nl i1 ~x_um:(-5.) ~y_um:1.;
  Netlist.place nl i2 ~x_um:1. ~y_um:1.;
  assert_fires ~placed:true nl "out-of-core" Check.Error;
  (* die bounds: in-bounds without them, out with them *)
  let nl2, j1, j2 = clean_pair () in
  Netlist.place nl2 j1 ~x_um:20. ~y_um:5.;
  Netlist.place nl2 j2 ~x_um:1. ~y_um:1.;
  assert_silent (Check.check_placed nl2) "out-of-core";
  let config = { Check.default_config with Check.die_um = Some (10., 10.) } in
  assert_fires ~placed:true ~config nl2 "out-of-core" Check.Error

(* --- stage gates --- *)

let test_gate_noop_when_off () =
  let nl, _, _ = clean_pair () in
  Alcotest.(check bool) "gates off" false (Check.gates_on ());
  (* outside with_gates this is a no-op even on a broken netlist *)
  ignore (Netlist.set_output nl "z" (Netlist.add_net nl "loose"));
  Check.gate ~stage:"test.off" nl

let test_with_gates_collects_reports () =
  let nl, _, _ = clean_pair () in
  let (), reports =
    Check.with_gates (fun () ->
        Alcotest.(check bool) "gates on inside" true (Check.gates_on ());
        Check.gate ~stage:"test.a" nl;
        Check.gate ~stage:"test.b" nl)
  in
  Alcotest.(check bool) "gates off after" false (Check.gates_on ());
  Alcotest.(check (list string)) "stages in order" [ "test.a"; "test.b" ]
    (List.map (fun r -> r.Check.stage) reports);
  List.iter
    (fun r ->
      Alcotest.(check string) "design name" "pair" r.Check.design;
      Alcotest.(check int) "no errors" 0
        (List.length (Check.errors r.Check.diagnostics)))
    reports

let test_strict_gate_raises () =
  let nl, _, _ = clean_pair () in
  ignore (Netlist.set_output nl "z" (Netlist.add_net nl "loose"));
  (try
     ignore (Check.with_gates ~strict:true (fun () -> Check.gate ~stage:"test.strict" nl));
     Alcotest.fail "strict gate did not raise"
   with Check.Gate_failed (stage, errs) ->
     Alcotest.(check string) "stage" "test.strict" stage;
     Alcotest.(check bool) "carries errors" true (errs <> []));
  (* non-strict mode records the same defect without raising *)
  let (), reports = Check.with_gates (fun () -> Check.gate ~stage:"test.lax" nl) in
  Alcotest.(check bool) "error logged" true
    (List.exists
       (fun r -> Check.errors r.Check.diagnostics <> [])
       reports)

let test_gate_counters () =
  let nl, _, _ = clean_pair () in
  ignore (Netlist.set_output nl "z" (Netlist.add_net nl "loose"));
  let sink = Obs.recorder () in
  Obs.with_sink sink (fun () ->
      ignore (Check.with_gates (fun () -> Check.gate ~stage:"test.obs" nl)));
  Alcotest.(check int) "gate counted" 1 (Obs.counter_value sink "check.gates");
  Alcotest.(check bool) "diagnostics counted" true
    (Obs.counter_value sink "check.diagnostics" > 0);
  Alcotest.(check int) "per-rule counter" 1
    (Obs.counter_value sink "check.rule.output-undriven")

let test_gate_json_roundtrip () =
  let nl, _, _ = clean_pair () in
  ignore (Netlist.set_output nl "z" (Netlist.add_net nl "loose"));
  let (), reports = Check.with_gates (fun () -> Check.gate ~stage:"test.json" nl) in
  List.iter
    (fun r ->
      let s = Gap_obs.Json.to_string (Check.gate_report_json r) in
      match Gap_obs.Json.of_string s with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "gate report JSON does not parse: %s" e)
    reports

(* --- flows are lint-clean and byte-identical with checking enabled --- *)

let experiment_case (id, title, run) =
  let speed =
    if List.mem id [ "E2"; "E3"; "E7"; "E8"; "E10" ] then `Slow else `Quick
  in
  ( Printf.sprintf "%s: %s lint-clean + byte-identical" id title,
    speed,
    fun () ->
      let plain = Exp.render (run ()) in
      let gated, reports = Check.with_gates ~strict:true run in
      Alcotest.(check string) "byte-identical with gates on" plain
        (Exp.render gated);
      List.iter
        (fun r ->
          Alcotest.(check int)
            (Printf.sprintf "%s %s errors" id r.Check.stage)
            0
            (List.length (Check.errors r.Check.diagnostics)))
        reports )

let suite =
  [
    ("rule catalog", `Quick, test_rule_catalog);
    ("clean netlist", `Quick, test_clean_netlist);
    ("undriven net + floating input", `Quick, test_undriven_and_floating);
    ("output undriven", `Quick, test_output_undriven);
    ("multi-driver: stale annotation", `Quick, test_multi_driver_stale_annotation);
    ("multi-driver: disagreeing annotation", `Quick, test_multi_driver_disagreeing_annotation);
    ("arity mismatch", `Quick, test_arity_mismatch);
    ("comb cycle witness", `Quick, test_comb_cycle);
    ("bad parasitic", `Quick, test_bad_parasitic);
    ("const output", `Quick, test_const_output);
    ("max fanout", `Quick, test_max_fanout);
    ("max cap", `Quick, test_max_cap);
    ("dangling net is info", `Quick, test_dangling_net_info);
    ("unplaced instance", `Quick, test_unplaced_instance);
    ("out of core", `Quick, test_out_of_core);
    ("gate is a no-op when off", `Quick, test_gate_noop_when_off);
    ("with_gates collects reports", `Quick, test_with_gates_collects_reports);
    ("strict gate raises", `Quick, test_strict_gate_raises);
    ("gate counters", `Quick, test_gate_counters);
    ("gate report json", `Quick, test_gate_json_roundtrip);
  ]
  @ List.map experiment_case Registry.all
