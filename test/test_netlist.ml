(* Tests for Gap_netlist: database operations, checks, simulation. *)

module Netlist = Gap_netlist.Netlist
module Check = Gap_netlist.Check
module Sim = Gap_netlist.Sim
module Library = Gap_liberty.Library
module Cell = Gap_liberty.Cell
module Libgen = Gap_liberty.Libgen

let lib = lazy (Libgen.make Gap_tech.Tech.asic_025um Libgen.rich)
let cell base drive = Option.get (Library.find (Lazy.force lib) ~base ~drive)

(* y = !(a & b) & c, plus a registered copy of y *)
let build_example () =
  let nl = Netlist.create ~lib:(Lazy.force lib) "example" in
  let a = Netlist.add_input nl "a" in
  let b = Netlist.add_input nl "b" in
  let c = Netlist.add_input nl "c" in
  let nand = Netlist.add_cell nl (cell "NAND2" 1.) [| a; b |] in
  let and2 = Netlist.add_cell nl (cell "AND2" 1.) [| Netlist.out_net nl nand; c |] in
  let flop = Netlist.add_cell nl (Library.smallest_flop (Lazy.force lib)) [| Netlist.out_net nl and2 |] in
  ignore (Netlist.set_output nl "y" (Netlist.out_net nl and2));
  ignore (Netlist.set_output nl "q" (Netlist.out_net nl flop));
  (nl, nand, and2, flop)

let test_structure () =
  let nl, nand, and2, flop = build_example () in
  Alcotest.(check int) "instances" 3 (Netlist.num_instances nl);
  Alcotest.(check int) "inputs" 3 (Netlist.num_inputs nl);
  Alcotest.(check int) "outputs" 2 (Netlist.num_outputs nl);
  Alcotest.(check bool) "flop detected" true (Netlist.is_flop nl flop);
  Alcotest.(check bool) "comb not flop" false (Netlist.is_flop nl nand);
  Alcotest.(check (list int)) "flops list" [ flop ] (Netlist.flops nl);
  Alcotest.(check (list int)) "comb list" [ nand; and2 ] (Netlist.combinational_instances nl);
  Alcotest.(check string) "input name" "a" (Netlist.input_name nl 0);
  Alcotest.(check string) "output name" "y" (Netlist.output_name nl 0)

let test_check_clean () =
  let nl, _, _, _ = build_example () in
  Alcotest.(check bool) "clean" true (Check.is_clean nl)

let test_check_detects_undriven () =
  (* simulate an undriven net by constructing one directly: add_cell then
     rewire a pin to a net that exists but has no driver is impossible through
     the API, so check the Undriven classification on an input net whose
     driver was never set... instead: an output fed by an undriven net can't
     be built, so we just confirm a clean netlist reports no issues and a
     dangling net is reported. *)
  let nl = Netlist.create ~lib:(Lazy.force lib) "dangling" in
  let a = Netlist.add_input nl "a" in
  let inv = Netlist.add_cell nl (cell "INV" 1.) [| a |] in
  ignore inv;
  (* inverter output drives nothing: dangling *)
  let issues = Check.check nl in
  Alcotest.(check bool) "dangling reported" true
    (List.exists (fun d -> d.Check.rule = "dangling-net") issues);
  Alcotest.(check bool) "still clean (dangling is benign)" true (Check.is_clean nl)

let test_topo_order () =
  let nl, nand, and2, _ = build_example () in
  let order = Array.to_list (Netlist.topo_instances nl) in
  let pos x =
    let rec go i = function
      | [] -> -1
      | y :: rest -> if x = y then i else go (i + 1) rest
    in
    go 0 order
  in
  Alcotest.(check bool) "nand before and2" true (pos nand < pos and2)

let test_net_load () =
  let nl, nand, and2, _ = build_example () in
  ignore nand;
  let a_net = Netlist.input_net nl 0 in
  let nand_cell = Netlist.cell_of nl 0 in
  Alcotest.(check (float 1e-9)) "a loads one NAND pin" nand_cell.Cell.input_cap_ff
    (Netlist.net_load_ff nl a_net);
  Netlist.set_wire_cap_ff nl a_net 5.;
  Alcotest.(check (float 1e-9)) "wire cap adds" (nand_cell.Cell.input_cap_ff +. 5.)
    (Netlist.net_load_ff nl a_net);
  ignore and2

let test_sim_comb () =
  let nl, _, _, _ = build_example () in
  let st = Sim.initial nl in
  for m = 0 to 7 do
    let bit i = m land (1 lsl i) <> 0 in
    let outs = Sim.eval nl st [| bit 0; bit 1; bit 2 |] in
    let expect = (not (bit 0 && bit 1)) && bit 2 in
    Alcotest.(check bool) "y = !(a&b) & c" expect outs.(0)
  done

let test_sim_sequential () =
  let nl, _, _, _ = build_example () in
  (* q lags y by one cycle *)
  let inputs =
    [ [| true; false; true |]; [| true; true; true |]; [| false; false; false |] ]
  in
  let outs = Sim.run nl inputs in
  let y_values = List.map (fun o -> o.(0)) outs in
  let q_values = List.map (fun o -> o.(1)) outs in
  Alcotest.(check (list bool)) "y" [ true; false; false ] y_values;
  Alcotest.(check (list bool)) "q delayed" [ false; true; false ] q_values

let test_replace_cell () =
  let nl, nand, _, _ = build_example () in
  let before = (Netlist.cell_of nl nand).Cell.drive in
  Netlist.replace_cell nl nand (cell "NAND2" 4.);
  Alcotest.(check bool) "drive changed" true ((Netlist.cell_of nl nand).Cell.drive <> before);
  (* function unchanged *)
  let st = Sim.initial nl in
  let outs = Sim.eval nl st [| true; true; true |] in
  Alcotest.(check bool) "logic preserved" false outs.(0)

let test_rewire_pin () =
  let nl, _, and2, _ = build_example () in
  let c_net = Netlist.input_net nl 2 in
  let a_net = Netlist.input_net nl 0 in
  Netlist.rewire_pin nl ~inst:and2 ~pin:1 a_net;
  Alcotest.(check int) "pin now on a" a_net (Netlist.fanins_of nl and2).(1);
  let sinks_c = Netlist.sinks_of nl c_net in
  Alcotest.(check bool) "old sink removed" false
    (List.exists (function Gap_netlist.Netlist.To_pin (i, p) -> i = and2 && p = 1 | _ -> false) sinks_c)

let test_insert_on_sinks_preserves_function () =
  let nl, _, and2, _ = build_example () in
  let y_before =
    let st = Sim.initial nl in
    List.map (fun m ->
        let bit i = m land (1 lsl i) <> 0 in
        (Sim.eval nl st [| bit 0; bit 1; bit 2 |]).(0))
      [ 0; 1; 2; 3; 4; 5; 6; 7 ]
  in
  let nand_out = (Netlist.fanins_of nl and2).(0) in
  let buf = List.hd (Library.buffers (Lazy.force lib)) in
  let sinks = Netlist.sinks_of nl nand_out in
  ignore (Netlist.insert_on_sinks nl buf ~net:nand_out ~sinks);
  let y_after =
    let st = Sim.initial nl in
    List.map (fun m ->
        let bit i = m land (1 lsl i) <> 0 in
        (Sim.eval nl st [| bit 0; bit 1; bit 2 |]).(0))
      [ 0; 1; 2; 3; 4; 5; 6; 7 ]
  in
  Alcotest.(check (list bool)) "buffer preserves logic" y_before y_after;
  Alcotest.(check bool) "still clean" true (Check.is_clean nl)

let test_area_and_parasitics () =
  let nl, _, _, _ = build_example () in
  Alcotest.(check bool) "area positive" true (Netlist.area_um2 nl > 0.);
  Netlist.set_wire_delay_ps nl 0 42.;
  Alcotest.(check (float 1e-9)) "wire delay set" 42. (Netlist.wire_delay_ps nl 0);
  Netlist.clear_parasitics nl;
  Alcotest.(check (float 1e-9)) "cleared" 0. (Netlist.wire_delay_ps nl 0)

let test_placement_roundtrip () =
  let nl, nand, _, _ = build_example () in
  Alcotest.(check bool) "unplaced" true (Netlist.location nl nand = None);
  Netlist.place nl nand ~x_um:10. ~y_um:20.;
  Alcotest.(check (option (pair (float 1e-9) (float 1e-9)))) "placed" (Some (10., 20.))
    (Netlist.location nl nand)

let test_const_nets () =
  let nl = Netlist.create ~lib:(Lazy.force lib) "const" in
  let one = Netlist.add_const nl true in
  let a = Netlist.add_input nl "a" in
  let and2 = Netlist.add_cell nl (cell "AND2" 1.) [| a; one |] in
  ignore (Netlist.set_output nl "y" (Netlist.out_net nl and2));
  let st = Sim.initial nl in
  Alcotest.(check bool) "a & 1 = a (true)" true (Sim.eval nl st [| true |]).(0);
  Alcotest.(check bool) "a & 1 = a (false)" false (Sim.eval nl st [| false |]).(0)

let suite =
  [
    ("structure accessors", `Quick, test_structure);
    ("check clean", `Quick, test_check_clean);
    ("check dangling", `Quick, test_check_detects_undriven);
    ("topological order", `Quick, test_topo_order);
    ("net load", `Quick, test_net_load);
    ("combinational simulation", `Quick, test_sim_comb);
    ("sequential simulation", `Quick, test_sim_sequential);
    ("replace cell", `Quick, test_replace_cell);
    ("rewire pin", `Quick, test_rewire_pin);
    ("insert_on_sinks preserves function", `Quick, test_insert_on_sinks_preserves_function);
    ("area and parasitics", `Quick, test_area_and_parasitics);
    ("placement roundtrip", `Quick, test_placement_roundtrip);
    ("constant nets", `Quick, test_const_nets);
  ]
