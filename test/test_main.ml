let () =
  Alcotest.run "asic-custom-gap"
    [
      ("util", Test_util.suite);
      ("obs", Test_obs.suite);
      ("report", Test_report.suite);
      ("resilience", Test_resilience.suite);
      ("tech", Test_tech.suite);
      ("logic", Test_logic.suite);
      ("liberty", Test_liberty.suite);
      ("netlist", Test_netlist.suite);
      ("check", Test_check.suite);
      ("verilog", Test_verilog.suite);
      ("power", Test_power.suite);
      ("datapath", Test_datapath.suite);
      ("sta", Test_sta.suite);
      ("synth", Test_synth.suite);
      ("interconnect", Test_interconnect.suite);
      ("place", Test_place.suite);
      ("clocktree", Test_clocktree.suite);
      ("retime", Test_retime.suite);
      ("sequential", Test_sequential.suite);
      ("domino", Test_domino.suite);
      ("variation", Test_variation.suite);
      ("uarch", Test_uarch.suite);
      ("core", Test_core.suite);
      ("experiments", Test_experiments.suite);
      ("dse", Test_dse.suite);
      ("fpga", Test_fpga.suite);
      ("segstore", Test_segstore.suite);
      ("serve", Test_serve.suite);
    ]
