(* Tests for Gap_retime: Leiserson-Saxe retiming, cutset pipelining, the
   overhead model. *)

module Retime = Gap_retime.Retime
module Pipeline = Gap_retime.Pipeline
module Overhead = Gap_retime.Overhead
module Netlist = Gap_netlist.Netlist
module Sim = Gap_netlist.Sim
module Libgen = Gap_liberty.Libgen

let lib = lazy (Libgen.make Gap_tech.Tech.asic_025um Libgen.rich)
let check_close msg tol expected actual = Alcotest.(check (float tol)) msg expected actual

(* --- retiming --- *)

let ring delays regs =
  let g = Retime.create () in
  let nodes = Array.map (fun d -> Retime.add_node g ~delay:d) delays in
  Array.iteri
    (fun i r ->
      Retime.add_edge g ~src:nodes.(i) ~dst:nodes.((i + 1) mod Array.length nodes) ~regs:r)
    regs;
  g

let test_clock_period_zero_retiming () =
  let g = ring [| 2.; 2.; 2. |] [| 1; 0; 0 |] in
  (* register-free path: n1 -> n2 (through the two 0-weight edges): 2+2+2?
     n0 -> n1 edge has the register, so the longest 0-weight chain is
     n1 -> n2 -> n0: 6 *)
  check_close "period" 1e-9 6. (Retime.clock_period g)

let test_retiming_balances_ring () =
  let g = ring [| 2.; 2.; 2.; 2.; 2.; 2. |] [| 0; 0; 0; 0; 0; 3 |] in
  check_close "unbalanced" 1e-9 12. (Retime.clock_period g);
  let period, r = Retime.min_period g in
  check_close "balanced to 4" 1e-2 4. period;
  Alcotest.(check bool) "retiming legal" true (Retime.legal g r);
  (* registers on a cycle are conserved by retiming *)
  Alcotest.(check int) "register count preserved" (Retime.registers g)
    (Retime.registers ~retiming:r g)

let test_retiming_cannot_split_nodes () =
  let g = ring [| 9.; 3.; 3. |] [| 1; 1; 1 |] in
  let period, _ = Retime.min_period g in
  check_close "bounded by biggest node" 1e-2 9. period

let test_well_formed () =
  let good = ring [| 1.; 1. |] [| 1; 0 |] in
  Alcotest.(check bool) "cycle with register ok" true (Retime.well_formed good);
  let bad = ring [| 1.; 1. |] [| 0; 0 |] in
  Alcotest.(check bool) "register-free cycle rejected" false (Retime.well_formed bad)

let test_register_free_cycle_exception () =
  let bad = ring [| 1.; 1.; 1. |] [| 0; 0; 0 |] in
  match Retime.clock_period bad with
  | exception Retime.Register_free_cycle nodes ->
      Alcotest.(check bool) "cycle nonempty" true (nodes <> []);
      Alcotest.(check bool) "witness nodes in range" true
        (List.for_all (fun v -> v >= 0 && v < Retime.node_count bad) nodes)
  | p -> Alcotest.failf "expected Register_free_cycle, got period %g" p

let test_feasible_bounds () =
  let g = ring [| 2.; 2.; 2.; 2. |] [| 0; 0; 2; 0 |] in
  Alcotest.(check bool) "period below max node infeasible" true
    (Retime.feasible g ~period:1.9 = None);
  Alcotest.(check bool) "generous period feasible" true (Retime.feasible g ~period:8. <> None)

let test_retiming_dag_with_io_chain () =
  (* a pipeline-like chain: src -(1 reg)-> a -> b -(1 reg)-> c, delays 1/5/1;
     moving the first register right shortens the critical chain *)
  let g = Retime.create () in
  let src = Retime.add_node g ~delay:1. in
  let a = Retime.add_node g ~delay:5. in
  let b = Retime.add_node g ~delay:1. in
  Retime.add_edge g ~src ~dst:a ~regs:1;
  Retime.add_edge g ~src:a ~dst:b ~regs:0;
  check_close "initial" 1e-9 6. (Retime.clock_period g);
  let period, _ = Retime.min_period g in
  Alcotest.(check bool) "improved" true (period <= 6.)

(* --- pipelining --- *)

let alu_netlist () =
  let g = Gap_datapath.Alu.alu 6 in
  let effort = { Gap_synth.Flow.default_effort with Gap_synth.Flow.tilos_moves = 0 } in
  ((Gap_synth.Flow.run ~lib:(Lazy.force lib) ~effort g).Gap_synth.Flow.netlist, g)

let test_pipeline_speeds_up () =
  (* a deep datapath, so 4 stages have room to pay the register overhead *)
  let g = Gap_datapath.Multiplier.array_multiplier ~width:8 in
  let effort = { Gap_synth.Flow.default_effort with Gap_synth.Flow.tilos_moves = 0 } in
  let nl = (Gap_synth.Flow.run ~lib:(Lazy.force lib) ~effort g).Gap_synth.Flow.netlist in
  let r = Pipeline.pipeline ~stages:4 nl in
  Alcotest.(check bool) "registers inserted" true (r.Pipeline.registers_added > 0);
  Alcotest.(check bool) "period shrank" true (r.Pipeline.period_after_ps < r.Pipeline.period_before_ps);
  Alcotest.(check bool) "speedup over 2x at 4 stages" true (r.Pipeline.speedup > 2.);
  Alcotest.(check int) "latency" 3 (Pipeline.latency_cycles r)

let test_pipeline_functional_equivalence () =
  (* the pipelined circuit computes the same function with stages-1 cycles of
     latency *)
  let nl, g = alu_netlist () in
  let stages = 3 in
  ignore (Pipeline.pipeline ~stages nl);
  Alcotest.(check bool) "netlist clean" true (Gap_netlist.Check.is_clean nl);
  let rng = Gap_util.Rng.create ~seed:4L () in
  let n_in = Gap_logic.Aig.num_inputs g in
  let vectors = List.init 40 (fun _ -> Array.init n_in (fun _ -> Gap_util.Rng.bool rng)) in
  (* drive the pipeline cycle by cycle *)
  let outs = Sim.run nl vectors in
  let latency = stages - 1 in
  List.iteri
    (fun cycle out ->
      if cycle >= latency then begin
        let expect = Gap_logic.Aig.eval g (List.nth vectors (cycle - latency)) in
        Alcotest.(check bool)
          (Printf.sprintf "cycle %d matches input %d" cycle (cycle - latency))
          true (out = expect)
      end)
    outs

let test_pipeline_single_stage_baseline () =
  let nl, _ = alu_netlist () in
  let r = Pipeline.pipeline ~stages:1 nl in
  Alcotest.(check int) "no registers" 0 r.Pipeline.registers_added;
  Alcotest.(check bool) "baseline charges a register boundary" true
    (r.Pipeline.period_after_ps > r.Pipeline.period_before_ps)

let test_pipeline_deeper_is_faster () =
  let build () = fst (alu_netlist ()) in
  let p stages =
    (Pipeline.pipeline ~stages (build ())).Pipeline.period_after_ps
  in
  let p2 = p 2 and p5 = p 5 in
  Alcotest.(check bool) "5 stages beat 2" true (p5 < p2)

let test_pipeline_rejects_sequential () =
  let nl, _ = alu_netlist () in
  ignore (Pipeline.pipeline ~stages:2 nl);
  (* pipelining an already-sequential netlist is a programming error *)
  Alcotest.(check bool) "raises on flops" true
    (try
       ignore (Pipeline.pipeline ~stages:2 nl);
       false
     with Assert_failure _ -> true)

let pipeline_random_equivalence =
  QCheck.Test.make ~name:"pipelining preserves random logic (any depth)" ~count:6
    QCheck.(pair (int_range 0 5000) (int_range 2 5))
    (fun (seed, stages) ->
      let g =
        Gap_datapath.Random_logic.generate ~seed:(Int64.of_int seed) ~inputs:8
          ~outputs:4 ~gates:120 ()
      in
      let nl = Gap_synth.Mapper.map_aig ~lib:(Lazy.force lib) g in
      ignore (Pipeline.pipeline ~stages nl);
      let rng = Gap_util.Rng.create ~seed:(Int64.of_int (seed + 1)) () in
      let vectors = List.init 25 (fun _ -> Array.init 8 (fun _ -> Gap_util.Rng.bool rng)) in
      let outs = Sim.run nl vectors in
      let latency = stages - 1 in
      List.for_all2
        (fun cycle out ->
          cycle < latency
          || out = Gap_logic.Aig.eval g (List.nth vectors (cycle - latency)))
        (List.init (List.length outs) Fun.id)
        outs)

(* --- time borrowing --- *)

module Borrowing = Gap_retime.Borrowing

let test_borrowing_ff_is_worst_stage () =
  let d = [| 10.; 2.; 6. |] in
  check_close "ff period = worst stage" 1e-2 10.
    (Borrowing.min_period ~stage_delays:d Borrowing.Edge_ff)

let test_borrowing_balanced_no_gain () =
  (* a balanced RING cannot gain: borrowed time must be repaid around the
     loop. (A balanced linear pipeline still gains slightly from phase
     sliding — useful skew — which is correct behaviour.) *)
  let d = [| 5.; 5.; 5.; 5. |] in
  check_close "balanced ring: no gain" 1e-2 1.0
    (Borrowing.borrowing_gain ~ring:true ~stage_delays:d ~duty:0.5 ());
  let linear = Borrowing.borrowing_gain ~stage_delays:d ~duty:0.5 () in
  Alcotest.(check bool) "linear phase sliding gain is small" true
    (linear >= 1.0 && linear < 1.2)

let test_borrowing_recovers_imbalance () =
  let d = [| 10.; 2. |] in
  let latch = Borrowing.min_period ~stage_delays:d (Borrowing.Two_phase_latch 0.5) in
  (* binding constraint: stage 1 must land in the window, 10 - P <= 0.5 P,
     so P = 10 / 1.5 = 6.67 *)
  check_close "borrowing down to 6.67" 5e-2 (10. /. 1.5) latch;
  Alcotest.(check bool) "gain > 1.4" true
    (Borrowing.borrowing_gain ~stage_delays:d ~duty:0.5 () > 1.4)

let test_borrowing_bounded_by_average () =
  let d = [| 9.; 1.; 9.; 1. |] in
  let latch = Borrowing.min_period ~stage_delays:d (Borrowing.Two_phase_latch 0.5) in
  let avg = 5. in
  Alcotest.(check bool) "never below average" true (latch >= avg -. 1e-2);
  Alcotest.(check bool) "better than ff" true
    (latch < Borrowing.min_period ~stage_delays:d Borrowing.Edge_ff)

let test_borrowing_window_limits () =
  (* a narrow window can't absorb a big imbalance *)
  let d = [| 10.; 2. |] in
  let narrow = Borrowing.min_period ~stage_delays:d (Borrowing.Two_phase_latch 0.1) in
  let wide = Borrowing.min_period ~stage_delays:d (Borrowing.Two_phase_latch 0.5) in
  Alcotest.(check bool) "wider window borrows more" true (wide < narrow);
  Alcotest.(check bool) "narrow still beats ff" true (narrow <= 10. +. 1e-6)

let test_borrowing_ring () =
  (* in a ring the borrowed time must be paid back around the loop *)
  let d = [| 8.; 4. |] in
  let linear = Borrowing.min_period ~stage_delays:d (Borrowing.Two_phase_latch 0.5) in
  let ring = Borrowing.min_period ~ring:true ~stage_delays:d (Borrowing.Two_phase_latch 0.5) in
  Alcotest.(check bool) "ring at least linear" true (ring >= linear -. 1e-6);
  (* loop throughput bound: (8+4)/2 = 6 *)
  Alcotest.(check bool) "ring >= loop average" true (ring >= 6. -. 1e-2)

let test_borrowing_feasible_consistent () =
  let d = [| 7.; 3.; 5. |] in
  let p = Borrowing.min_period ~stage_delays:d (Borrowing.Two_phase_latch 0.5) in
  Alcotest.(check bool) "min period feasible" true
    (Borrowing.feasible ~stage_delays:d ~period:(p +. 1e-3) (Borrowing.Two_phase_latch 0.5));
  Alcotest.(check bool) "below min infeasible" false
    (Borrowing.feasible ~stage_delays:d ~period:(p -. 0.2) (Borrowing.Two_phase_latch 0.5))

let test_stage_delays_extraction () =
  (* pipeline a multiplier and pull the per-stage profile back out *)
  let g = Gap_datapath.Multiplier.array_multiplier ~width:6 in
  let effort = { Gap_synth.Flow.default_effort with Gap_synth.Flow.tilos_moves = 0 } in
  let nl = (Gap_synth.Flow.run ~lib:(Lazy.force lib) ~effort g).Gap_synth.Flow.netlist in
  let r = Pipeline.pipeline ~stages:3 nl in
  let stages = Borrowing.stage_delays_of_pipeline nl ~config:Gap_sta.Sta.default_config in
  Alcotest.(check int) "three stages" 3 (Array.length stages);
  Array.iter (fun d -> Alcotest.(check bool) "stage delay positive" true (d > 0.)) stages;
  (* the worst stage matches the pipelined STA period *)
  let worst = Array.fold_left Float.max 0. stages in
  check_close "worst stage = pipeline period" 1e-3 r.Pipeline.period_after_ps worst

let borrowing_laws =
  QCheck.Test.make ~name:"borrowing laws on random stage profiles" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 6) (float_range 1. 20.))
    (fun stages ->
      let d = Array.of_list stages in
      let ff = Borrowing.min_period ~stage_delays:d Borrowing.Edge_ff in
      let latch = Borrowing.min_period ~stage_delays:d (Borrowing.Two_phase_latch 0.5) in
      let worst = Array.fold_left Float.max 0. d in
      let total = Array.fold_left ( +. ) 0. d in
      let n = float_of_int (Array.length d) in
      (* latch never worse than ff; ff pinned at the worst stage; a linear
         pipeline can use the last window too, so the floor is
         total/(n + duty); and the reported optimum is feasible *)
      latch <= ff +. 1e-6
      && Float.abs (ff -. worst) < 1e-2
      && latch >= (total /. (n +. 0.5)) -. 1e-2
      && Borrowing.feasible ~stage_delays:d ~period:(latch +. 1e-3)
           (Borrowing.Two_phase_latch 0.5))

(* --- overhead model --- *)

let test_paper_speedups () =
  check_close "5 stages 30%" 1e-3 3.846 (Overhead.paper_speedup ~stages:5 ~overhead_frac:0.30);
  check_close "4 stages 20%" 1e-3 3.333 (Overhead.paper_speedup ~stages:4 ~overhead_frac:0.20)

let test_register_overhead () =
  let o = Overhead.register_overhead_ps ~lib:(Lazy.force lib) ~skew_ps:50. in
  let fo4 = Gap_tech.Tech.fo4_ps Gap_tech.Tech.asic_025um in
  check_close "setup + clkq + skew" 1e-6 ((2.5 *. fo4) +. 50.) o

let test_exact_speedup_saturates () =
  (* with overhead, speedup is sublinear in stages *)
  let s n = Overhead.exact_speedup ~total_logic_ps:4000. ~stages:n ~overhead_ps:300. in
  Alcotest.(check bool) "monotone" true (s 2 < s 4 && s 4 < s 8);
  Alcotest.(check bool) "sublinear" true (s 8 < 8.);
  check_close "period formula" 1e-9 800.
    (Overhead.period_ps ~total_logic_ps:4000. ~stages:8 ~overhead_ps:300.)

let test_overhead_fraction_self_consistent () =
  let lib = Lazy.force lib in
  let v = Overhead.overhead_fraction ~lib ~skew_frac:0.10 ~stage_logic_ps:1170. in
  (* period = (logic + reg) / 0.9; fraction = (period - logic)/logic *)
  let reg = Overhead.register_overhead_ps ~lib ~skew_ps:0. in
  let period = (1170. +. reg) /. 0.9 in
  check_close "matches closed form" 1e-6 ((period -. 1170.) /. 1170.) v

let suite =
  [
    ("clock period under zero retiming", `Quick, test_clock_period_zero_retiming);
    ("retiming balances ring", `Quick, test_retiming_balances_ring);
    ("retiming cannot split nodes", `Quick, test_retiming_cannot_split_nodes);
    ("well-formedness", `Quick, test_well_formed);
    ("register-free cycle is typed", `Quick, test_register_free_cycle_exception);
    ("feasibility bounds", `Quick, test_feasible_bounds);
    ("retiming a chain", `Quick, test_retiming_dag_with_io_chain);
    ("pipeline speeds up", `Quick, test_pipeline_speeds_up);
    ("pipeline functional equivalence", `Quick, test_pipeline_functional_equivalence);
    ("pipeline 1-stage baseline", `Quick, test_pipeline_single_stage_baseline);
    ("pipeline deeper is faster", `Quick, test_pipeline_deeper_is_faster);
    ("pipeline rejects sequential", `Quick, test_pipeline_rejects_sequential);
    QCheck_alcotest.to_alcotest pipeline_random_equivalence;
    QCheck_alcotest.to_alcotest borrowing_laws;
    ("borrowing: ff = worst stage", `Quick, test_borrowing_ff_is_worst_stage);
    ("borrowing: balanced ring no gain", `Quick, test_borrowing_balanced_no_gain);
    ("borrowing: recovers imbalance", `Quick, test_borrowing_recovers_imbalance);
    ("borrowing: bounded by average", `Quick, test_borrowing_bounded_by_average);
    ("borrowing: window limits", `Quick, test_borrowing_window_limits);
    ("borrowing: ring", `Quick, test_borrowing_ring);
    ("borrowing: feasibility consistent", `Quick, test_borrowing_feasible_consistent);
    ("borrowing: stage extraction", `Quick, test_stage_delays_extraction);
    ("paper speedup arithmetic", `Quick, test_paper_speedups);
    ("register overhead", `Quick, test_register_overhead);
    ("exact speedup saturates", `Quick, test_exact_speedup_saturates);
    ("overhead fraction self-consistent", `Quick, test_overhead_fraction_self_consistent);
  ]
