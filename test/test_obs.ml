(* Gap_obs: spans nest and aggregate, counters add, histogram buckets land
   where the bounds say, JSONL traces parse and round-trip, and — the one
   that matters for science — enabling telemetry does not change any
   experiment's numbers. *)

module Obs = Gap_obs.Obs
module Json = Gap_obs.Json
module Exp = Gap_experiments.Exp
module Registry = Gap_experiments.Registry

let with_temp_file f =
  let path = Filename.temp_file "gap_obs_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* --- spans --- *)

let test_span_nesting () =
  let sink = Obs.recorder () in
  Obs.with_sink sink (fun () ->
      Obs.span "outer" (fun () ->
          Obs.span "mid" (fun () -> Obs.span "leaf" (fun () -> ()));
          Obs.span "mid" (fun () -> ()));
      Obs.span "outer" (fun () -> ()));
  let spans = Obs.spans sink in
  let paths = List.map (fun (s : Obs.span_stats) -> s.path) spans in
  Alcotest.(check (list string))
    "first-open order" [ "outer"; "outer/mid"; "outer/mid/leaf" ] paths;
  let by_path p = List.find (fun (s : Obs.span_stats) -> s.path = p) spans in
  Alcotest.(check int) "outer calls" 2 (by_path "outer").calls;
  Alcotest.(check int) "mid calls" 2 (by_path "outer/mid").calls;
  Alcotest.(check int) "leaf calls" 1 (by_path "outer/mid/leaf").calls;
  Alcotest.(check int) "outer depth" 0 (by_path "outer").depth;
  Alcotest.(check int) "mid depth" 1 (by_path "outer/mid").depth;
  Alcotest.(check int) "leaf depth" 2 (by_path "outer/mid/leaf").depth;
  List.iter
    (fun (s : Obs.span_stats) ->
      Alcotest.(check bool)
        (s.path ^ " total covers calls") true
        (s.total_ns >= 0. && s.min_ns <= s.max_ns && s.max_ns <= s.total_ns))
    spans

let test_span_exception_safe () =
  let sink = Obs.recorder () in
  (try
     Obs.with_sink sink (fun () ->
         Obs.span "boom" (fun () -> failwith "expected"))
   with Failure _ -> ());
  match Obs.spans sink with
  | [ s ] ->
      Alcotest.(check string) "span closed" "boom" s.Obs.path;
      Alcotest.(check int) "counted" 1 s.Obs.calls
  | l -> Alcotest.failf "expected one span, got %d" (List.length l)

let test_exp_tagging () =
  let sink = Obs.recorder () in
  Obs.with_sink sink (fun () ->
      Obs.with_exp "E6" (fun () -> Obs.span "work" (fun () -> ())));
  match Obs.spans sink with
  | [ s ] -> Alcotest.(check string) "tagged" "E6" s.Obs.exp
  | _ -> Alcotest.fail "expected one span"

(* --- counters / gauges --- *)

let test_counter_arithmetic () =
  let sink = Obs.recorder () in
  Obs.with_sink sink (fun () ->
      Obs.incr "a";
      Obs.incr ~by:10 "a";
      Obs.incr ~by:(-3) "a";
      Obs.incr "b");
  Alcotest.(check int) "a sums" 8 (Obs.counter_value sink "a");
  Alcotest.(check int) "b" 1 (Obs.counter_value sink "b");
  Alcotest.(check int) "missing is 0" 0 (Obs.counter_value sink "nope");
  Alcotest.(check (list string))
    "declaration order" [ "a"; "b" ]
    (List.map fst (Obs.counters sink))

let test_gauge_last_write_wins () =
  let sink = Obs.recorder () in
  Obs.with_sink sink (fun () ->
      Obs.gauge "hpwl" 100.;
      Obs.gauge "hpwl" 42.5);
  match Obs.gauge_value sink "hpwl" with
  | Some v -> Alcotest.(check (float 1e-9)) "last value" 42.5 v
  | None -> Alcotest.fail "gauge missing"

(* --- histograms --- *)

let test_histogram_buckets () =
  let sink = Obs.recorder () in
  let bounds = [| 1.; 2.; 5. |] in
  Obs.with_sink sink (fun () ->
      List.iter
        (Obs.observe ~bounds "h")
        [ 0.5; 1.0; 1.5; 2.0; 3.0; 5.0; 7.0 ]);
  match Obs.histogram_stats sink "h" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
      (* counts.(i) holds bounds.(i-1) < v <= bounds.(i); last is overflow *)
      Alcotest.(check (array int)) "bucket counts" [| 2; 2; 2; 1 |] h.Obs.counts;
      Alcotest.(check int) "n" 7 h.Obs.n;
      Alcotest.(check (float 1e-9)) "min" 0.5 h.Obs.min_v;
      Alcotest.(check (float 1e-9)) "max" 7.0 h.Obs.max_v;
      Alcotest.(check (float 1e-9)) "sum" 20.0 h.Obs.sum

let test_histogram_default_bounds () =
  let sink = Obs.recorder () in
  Obs.with_sink sink (fun () -> Obs.observe "d" 123.);
  match Obs.histogram_stats sink "d" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
      Alcotest.(check int) "n" 1 h.Obs.n;
      Alcotest.(check int) "one bucket hit" 1
        (Array.fold_left ( + ) 0 h.Obs.counts)

(* --- noop sink --- *)

let test_noop_records_nothing () =
  Obs.with_sink Obs.null (fun () ->
      Obs.span "s" (fun () -> Obs.incr "c");
      Obs.observe "h" 1.;
      Obs.event "e" []);
  Alcotest.(check bool) "disabled" false (Obs.enabled ());
  Alcotest.(check int) "no spans" 0 (List.length (Obs.spans Obs.null));
  Alcotest.(check string) "empty summary" "" (Obs.summary Obs.null)

(* --- JSON --- *)

let test_json_roundtrip () =
  let open Json in
  let v =
    Obj
      [
        ("null", Null);
        ("t", Bool true);
        ("i", Int (-42));
        ("f", Float 3.25);
        ("whole", Float 7.);
        ("s", Str "a\"b\\c\nd\te\r \x01 é");
        ("l", List [ Int 1; Str "two"; Obj [ ("k", Bool false) ] ]);
        ("empty_l", List []);
        ("empty_o", Obj []);
      ]
  in
  (match of_string (to_string v) with
  | Ok v' -> Alcotest.(check bool) "compact round-trips" true (v = v')
  | Error e -> Alcotest.failf "parse failed: %s" e);
  match of_string (to_string ~pretty:true v) with
  | Ok v' -> Alcotest.(check bool) "pretty round-trips" true (v = v')
  | Error e -> Alcotest.failf "pretty parse failed: %s" e

let test_json_parser_strict () =
  let bad s =
    match Json.of_string s with
    | Ok _ -> Alcotest.failf "accepted invalid JSON: %s" s
    | Error _ -> ()
  in
  bad "";
  bad "{";
  bad "[1,]";
  bad "{\"a\":1} trailing";
  bad "'single'";
  bad "nul";
  (match Json.of_string "{\"a\": [1, 2.5, \"\\u00e9\"]}" with
  | Ok (Json.Obj [ ("a", Json.List [ Json.Int 1; Json.Float 2.5; Json.Str "é" ]) ]) -> ()
  | Ok _ -> Alcotest.fail "parsed to unexpected shape"
  | Error e -> Alcotest.failf "parse failed: %s" e);
  Alcotest.(check bool)
    "member" true
    (Json.member "a" (Json.Obj [ ("a", Json.Int 1) ]) = Some (Json.Int 1));
  Alcotest.(check bool)
    "nan renders null" true
    (Json.to_string (Json.Float Float.nan) = "null")

(* --- JSON properties --- *)

(* arbitrary NaN-free values: the renderer/parser pair must round-trip
   every one of them, not just the shapes the flow happens to emit *)
let json_gen =
  let open QCheck.Gen in
  let finite_float =
    map
      (fun f -> if Float.is_finite f then f else 0.)
      (oneof [ float; map float_of_int int; return 0.; return (-0.) ])
  in
  let scalar =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Int i) int;
        map (fun f -> Json.Float f) finite_float;
        map (fun s -> Json.Str s) (string_size (0 -- 12));
      ]
  in
  sized
    (fix (fun self n ->
         if n <= 0 then scalar
         else
           frequency
             [
               (3, scalar);
               (1, map (fun l -> Json.List l) (list_size (0 -- 4) (self (n / 2))));
               ( 1,
                 map
                   (fun kvs -> Json.Obj kvs)
                   (list_size (0 -- 4)
                      (pair (string_size (0 -- 6)) (self (n / 2)))) );
             ]))

let json_roundtrip_property =
  QCheck.Test.make ~name:"json of_string (to_string v) = Ok v" ~count:500
    (QCheck.make ~print:(fun v -> Json.to_string v) json_gen)
    (fun v ->
      Json.of_string (Json.to_string v) = Ok v
      && Json.of_string (Json.to_string ~pretty:true v) = Ok v)

let float_repr_stability_property =
  QCheck.Test.make ~name:"float_repr is shortest-form stable" ~count:1000
    QCheck.(map (fun f -> if Float.is_finite f then f else 1.5) float)
    (fun f ->
      let r = Json.float_repr f in
      (* reads back to the same float, and re-rendering the read-back value
         reproduces the representation exactly (no drift) *)
      float_of_string r = f && Json.float_repr (float_of_string r) = r)

let test_json_surrogate_pairs () =
  (* U+1F600 as an escaped surrogate pair must decode to 4-byte UTF-8 *)
  (match Json.of_string "\"\\ud83d\\ude00\"" with
  | Ok (Json.Str s) ->
      Alcotest.(check string) "surrogate pair decodes" "\xf0\x9f\x98\x80" s
  | Ok _ -> Alcotest.fail "parsed to non-string"
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (* a lone high surrogate is not combined; it decodes as its own code unit *)
  (match Json.of_string "\"\\ud83dx\"" with
  | Ok (Json.Str s) ->
      Alcotest.(check int) "lone surrogate keeps width" 4 (String.length s)
  | Ok _ -> Alcotest.fail "parsed to non-string"
  | Error e -> Alcotest.failf "lone surrogate rejected: %s" e);
  (* high surrogate followed by a non-low-surrogate escape stays separate *)
  match Json.of_string "\"\\ud83d\\u0041\"" with
  | Ok (Json.Str s) ->
      Alcotest.(check bool) "ends with A" true
        (String.length s > 1 && s.[String.length s - 1] = 'A')
  | Ok _ -> Alcotest.fail "parsed to non-string"
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_float_repr_corpus () =
  List.iter
    (fun (f, expect) ->
      Alcotest.(check string)
        (Printf.sprintf "float_repr %h" f)
        expect (Json.float_repr f))
    [
      (1., "1.0");
      (-0.5, "-0.5");
      (0.1, "0.1");
      (1e22, "1e+22");
      (Float.nan, "null");
      (Float.infinity, "null");
    ]

(* --- major/promoted word deltas --- *)

let test_span_major_words () =
  let sink = Obs.recorder () in
  Obs.with_sink sink (fun () ->
      Obs.span "big" (fun () ->
          (* a >256-word float array allocates directly on the major heap *)
          ignore (Sys.opaque_identity (Array.make 100_000 0.))));
  match Obs.spans sink with
  | [ s ] ->
      Alcotest.(check bool) "major words recorded" true (s.Obs.major_words > 0.);
      Alcotest.(check bool) "promoted words non-negative" true
        (s.Obs.promoted_words >= 0.)
  | l -> Alcotest.failf "expected one span, got %d" (List.length l)

let test_trace_has_alloc_fields () =
  with_temp_file (fun path ->
      let oc = open_out path in
      let sink = Obs.recorder ~trace:oc () in
      Obs.with_sink sink (fun () -> Obs.span "s" (fun () -> ()));
      close_out oc;
      match Json.of_string (String.trim (read_file path)) with
      | Error e -> Alcotest.failf "trace line invalid: %s" e
      | Ok j ->
          List.iter
            (fun k ->
              match Json.member k j with
              | Some (Json.Float _) -> ()
              | _ -> Alcotest.failf "span line missing float field %s" k)
            [ "minor_words"; "major_words"; "promoted_words" ])

(* --- JSONL trace --- *)

let test_trace_jsonl () =
  with_temp_file (fun path ->
      let oc = open_out path in
      let sink = Obs.recorder ~trace:oc () in
      Obs.with_sink sink (fun () ->
          Obs.with_exp "T1" (fun () ->
              Obs.span "alpha" ~attrs:[ ("k", Json.Int 7) ] (fun () ->
                  Obs.span "beta" (fun () -> ()));
              Obs.event "tick" [ ("n", Json.Int 1) ]));
      close_out oc;
      let lines =
        String.split_on_char '\n' (read_file path)
        |> List.filter (fun l -> String.trim l <> "")
      in
      Alcotest.(check int) "three lines" 3 (List.length lines);
      let parsed =
        List.map
          (fun l ->
            match Json.of_string l with
            | Ok j -> j
            | Error e -> Alcotest.failf "trace line does not parse: %s (%s)" l e)
          lines
      in
      let types =
        List.filter_map (fun j ->
            match Json.member "type" j with Some (Json.Str t) -> Some t | _ -> None)
          parsed
      in
      (* spans close inner-first, then the event *)
      Alcotest.(check (list string)) "line types" [ "span"; "span"; "event" ] types;
      let beta = List.nth parsed 0 in
      Alcotest.(check bool) "inner path" true
        (Json.member "path" beta = Some (Json.Str "alpha/beta"));
      Alcotest.(check bool) "exp tag" true
        (Json.member "exp" beta = Some (Json.Str "T1"));
      let alpha = List.nth parsed 1 in
      (match Json.member "attrs" alpha with
      | Some attrs ->
          Alcotest.(check bool) "attrs survive" true
            (Json.member "k" attrs = Some (Json.Int 7))
      | None -> Alcotest.fail "attrs missing from span line");
      match Json.member "dur_ns" alpha with
      | Some (Json.Int d) -> Alcotest.(check bool) "duration non-negative" true (d >= 0)
      | _ -> Alcotest.fail "dur_ns missing")

let test_metrics_json_valid () =
  let sink = Obs.recorder () in
  Obs.with_sink sink (fun () ->
      Obs.span "s" (fun () -> Obs.incr "c");
      Obs.gauge "g" 1.5;
      Obs.observe ~bounds:[| 1.; 2. |] "h" 1.5;
      Obs.event "e" []);
  let doc = Obs.metrics_json sink in
  match Json.of_string (Json.to_string ~pretty:true doc) with
  | Error e -> Alcotest.failf "metrics json invalid: %s" e
  | Ok j ->
      List.iter
        (fun k ->
          Alcotest.(check bool) (k ^ " present") true (Json.member k j <> None))
        [ "version"; "spans"; "counters"; "gauges"; "events"; "histograms" ];
      (match Json.member "spans" j with
      | Some (Json.List [ span ]) ->
          Alcotest.(check bool) "span name" true
            (Json.member "name" span = Some (Json.Str "s"))
      | _ -> Alcotest.fail "expected exactly one span");
      match Json.member "histograms" j with
      | Some (Json.List [ h ]) ->
          Alcotest.(check bool) "hist n" true (Json.member "n" h = Some (Json.Int 1))
      | _ -> Alcotest.fail "expected exactly one histogram"

let test_spans_csv () =
  let sink = Obs.recorder () in
  Obs.with_sink sink (fun () -> Obs.span "a" (fun () -> ()));
  let csv = Obs.spans_csv sink in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + one row" 2 (List.length lines);
  Alcotest.(check bool) "header names path" true
    (String.length (List.hd lines) > 0
    && String.sub (List.hd lines) 0 5 = "\"exp\"")

(* --- determinism: telemetry must not change experiment output --- *)

let run_exp id =
  match Registry.find id with
  | Some run -> run ()
  | None -> Alcotest.failf "experiment %s not registered" id

let test_instrumentation_is_inert () =
  with_temp_file (fun path ->
      let bare = Obs.with_sink Obs.null (fun () -> Exp.render (run_exp "E6")) in
      let oc = open_out path in
      let sink = Obs.recorder ~trace:oc () in
      let traced = Obs.with_sink sink (fun () -> Exp.render (run_exp "E6")) in
      close_out oc;
      Alcotest.(check string) "E6 output byte-identical under tracing" bare traced;
      let spans = Obs.spans sink in
      let total p =
        match List.find_opt (fun (s : Obs.span_stats) -> s.Obs.name = p) spans with
        | Some s -> s.Obs.total_ns
        | None -> Alcotest.failf "span %s not recorded" p
      in
      List.iter
        (fun p ->
          Alcotest.(check bool) (p ^ " has nonzero time") true (total p > 0.))
        [ "exp.E6"; "place.anneal"; "sta.analyze" ];
      List.iter
        (fun (s : Obs.span_stats) ->
          Alcotest.(check string) "all spans tagged E6" "E6" s.Obs.exp)
        spans;
      (* every trace line must be valid JSON *)
      String.split_on_char '\n' (read_file path)
      |> List.filter (fun l -> String.trim l <> "")
      |> List.iter (fun l ->
             match Json.of_string l with
             | Ok _ -> ()
             | Error e -> Alcotest.failf "invalid trace line: %s (%s)" l e))

let test_variation_spans () =
  let bare = Obs.with_sink Obs.null (fun () -> Exp.render (run_exp "E9")) in
  let sink = Obs.recorder () in
  let traced = Obs.with_sink sink (fun () -> Exp.render (run_exp "E9")) in
  Alcotest.(check string) "E9 output byte-identical under tracing" bare traced;
  let names = List.map (fun (s : Obs.span_stats) -> s.Obs.name) (Obs.spans sink) in
  Alcotest.(check bool) "mc.simulate span present" true
    (List.mem "mc.simulate" names);
  Alcotest.(check bool) "shard timings observed" true
    (match Obs.histogram_stats sink "mc.shard_ns" with
    | Some h -> h.Obs.n > 0
    | None -> false);
  Alcotest.(check bool) "samples counted" true
    (Obs.counter_value sink "mc.samples" > 0)

let suite =
  [
    ("span nesting and aggregation", `Quick, test_span_nesting);
    ("span closes on exception", `Quick, test_span_exception_safe);
    ("experiment tagging", `Quick, test_exp_tagging);
    ("counter arithmetic", `Quick, test_counter_arithmetic);
    ("gauge last write wins", `Quick, test_gauge_last_write_wins);
    ("histogram bucket boundaries", `Quick, test_histogram_buckets);
    ("histogram default bounds", `Quick, test_histogram_default_bounds);
    ("noop sink records nothing", `Quick, test_noop_records_nothing);
    ("json round-trip", `Quick, test_json_roundtrip);
    ("json parser strictness", `Quick, test_json_parser_strict);
    ("jsonl trace parses", `Quick, test_trace_jsonl);
    ("metrics json validity", `Quick, test_metrics_json_valid);
    ("spans csv shape", `Quick, test_spans_csv);
    ("json surrogate pairs", `Quick, test_json_surrogate_pairs);
    ("float_repr corpus", `Quick, test_float_repr_corpus);
    ("span major words", `Quick, test_span_major_words);
    ("trace span alloc fields", `Quick, test_trace_has_alloc_fields);
    ("tracing leaves E6 byte-identical", `Slow, test_instrumentation_is_inert);
    ("variation spans under E9", `Slow, test_variation_spans);
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ json_roundtrip_property; float_repr_stability_property ]
