(* Tests for Gap_dse.Segstore: record framing, crash recovery (truncation at
   every byte offset), typed corruption, compaction atomicity, flow staleness.
   The serve chaos campaign re-runs the same matrix against live daemons;
   this suite keeps the contract pinned at tier-1 speed. *)

module Segstore = Gap_dse.Segstore
module Stage_error = Gap_resilience.Stage_error

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let with_store f =
  let path = Filename.temp_file "gap_segstore" ".store" in
  Sys.remove path;
  Fun.protect ~finally:(fun () -> rm_rf path) (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* framing: magic + u32 length + u32 crc, payload = u16 keylen + key + data *)
let record_size ~key ~data = 9 + 2 + String.length key + String.length data

let fill path flow records =
  let t, loaded, note = Segstore.open_store ~flow path in
  Alcotest.(check int) "fresh store starts empty" 0 (List.length loaded);
  Alcotest.(check bool) "fresh store has no note" true (note = None);
  List.iter (fun (k, v) -> Segstore.append t ~key:k v) records;
  Segstore.close t

let sample_records =
  [ ("alpha", "payload-one"); ("beta", String.make 40 'x'); ("gamma", "z") ]

let expect_info path =
  match Segstore.validate path with
  | Ok i -> i
  | Error e -> Alcotest.fail ("validate: " ^ Stage_error.to_string e)

let test_roundtrip_append_order () =
  with_store (fun path ->
      fill path "flow-a" sample_records;
      let t, loaded, note = Segstore.open_store ~flow:"flow-a" path in
      Alcotest.(check bool) "clean reopen has no note" true (note = None);
      Alcotest.(check (list (pair string string)))
        "records survive in append order" sample_records loaded;
      (* duplicate keys survive until compaction; last-wins is the caller's *)
      Segstore.append t ~key:"alpha" "payload-two";
      Segstore.close t;
      let _, again, _ = Segstore.open_store ~flow:"flow-a" path in
      Alcotest.(check (list (pair string string)))
        "duplicates kept in order"
        (sample_records @ [ ("alpha", "payload-two") ])
        again;
      let i = expect_info path in
      Alcotest.(check int) "records" 4 i.Segstore.i_records;
      Alcotest.(check int) "distinct keys" 3 i.Segstore.i_keys;
      Alcotest.(check string) "flow" "flow-a" i.Segstore.i_flow)

(* Truncate the single segment at EVERY byte offset: recovery must keep
   exactly the longest whole-record prefix, reporting a torn note iff the
   cut is not at a record boundary. *)
let test_truncation_matrix () =
  with_store (fun path ->
      fill path "flow-a" sample_records;
      let seg =
        match expect_info path with
        | { Segstore.i_segments = 1; _ } -> (
            let t, _, _ = Segstore.open_store ~flow:"flow-a" path in
            match Segstore.segment_names t with
            | [ s ] ->
                Segstore.close t;
                s
            | l -> Alcotest.fail (Printf.sprintf "%d segments" (List.length l)))
        | i ->
            Alcotest.fail (Printf.sprintf "%d segments" i.Segstore.i_segments)
      in
      let seg_path = Filename.concat path seg in
      let pristine = read_file seg_path in
      let len = String.length pristine in
      let boundaries =
        (* byte offsets at which a cut is a whole-record prefix *)
        let rec go acc off = function
          | [] -> List.rev (off :: acc)
          | (k, v) :: rest ->
              go (off :: acc) (off + record_size ~key:k ~data:v) rest
        in
        go [] 0 sample_records
      in
      Alcotest.(check int)
        "framing arithmetic matches the file" len
        (List.fold_left max 0 boundaries);
      for cut = 0 to len do
        write_file seg_path (String.sub pristine 0 cut);
        let whole = List.filter (fun b -> b <= cut) boundaries in
        let expected_records = List.length whole - 1 in
        let at_boundary = List.mem cut boundaries in
        match Segstore.validate path with
        | Error e ->
            Alcotest.fail
              (Printf.sprintf "cut at %d: %s" cut (Stage_error.to_string e))
        | Ok i ->
            Alcotest.(check int)
              (Printf.sprintf "cut at %d keeps whole-record prefix" cut)
              expected_records i.Segstore.i_records;
            Alcotest.(check bool)
              (Printf.sprintf "cut at %d torn note iff mid-record" cut)
              (not at_boundary)
              (i.Segstore.i_torn <> None)
      done;
      (* recovery after a mid-record cut truncates, then appends cleanly *)
      write_file seg_path (String.sub pristine 0 (len - 3));
      let t, loaded, note = Segstore.open_store ~flow:"flow-a" path in
      Alcotest.(check int) "torn tail dropped" 2 (List.length loaded);
      Alcotest.(check bool) "recovery note reported" true (note <> None);
      Segstore.append t ~key:"delta" "after-recovery";
      Segstore.close t;
      let i = expect_info path in
      Alcotest.(check int) "appended past the scar" 3 i.Segstore.i_records;
      Alcotest.(check bool) "scar healed" true (i.Segstore.i_torn = None))

let test_corrupt_byte_is_typed () =
  with_store (fun path ->
      fill path "flow-a" sample_records;
      let t, _, _ = Segstore.open_store ~flow:"flow-a" path in
      let seg = List.hd (Segstore.segment_names t) in
      Segstore.close t;
      let seg_path = Filename.concat path seg in
      let pristine = read_file seg_path in
      (* flip a payload byte of record 0: a defect before the tail *)
      let b = Bytes.of_string pristine in
      let pos = 9 + 2 + 2 in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x5A));
      write_file seg_path (Bytes.to_string b);
      (match Segstore.validate path with
      | Ok _ -> Alcotest.fail "pre-tail corruption validated as clean"
      | Error (Stage_error.Storage_fault f) ->
          Alcotest.(check string) "fault names the segment" seg f.segment;
          Alcotest.(check int) "fault names the record offset" 0 f.offset;
          Alcotest.(check string)
            "fault is the checksum" "record checksum mismatch" f.detail
      | Error e ->
          Alcotest.fail ("wrong error type: " ^ Stage_error.to_string e));
      (* open_store raises the same typed failure *)
      (match Segstore.open_store ~flow:"flow-a" path with
      | _ -> Alcotest.fail "corrupt store opened"
      | exception Stage_error.Stage_failure (Stage_error.Storage_fault f) ->
          Alcotest.(check string) "open names the segment" seg f.segment);
      write_file seg_path pristine;
      ignore (expect_info path))

let test_flow_mismatch_reads_cold () =
  with_store (fun path ->
      fill path "flow-a" sample_records;
      let t, loaded, note = Segstore.open_store ~flow:"flow-b" path in
      Alcotest.(check int) "stale flow yields no records" 0 (List.length loaded);
      Alcotest.(check bool) "no note" true (note = None);
      Alcotest.(check bool) "marked stale" true (Segstore.stale t);
      (* first write resets the store to the current flow *)
      Segstore.append t ~key:"fresh" "v";
      Alcotest.(check bool) "write clears staleness" false (Segstore.stale t);
      Segstore.close t;
      let i = expect_info path in
      Alcotest.(check string) "manifest re-flowed" "flow-b" i.Segstore.i_flow;
      Alcotest.(check int) "old-flow records gone" 1 i.Segstore.i_records)

let test_rewrite_compacts_and_sweeps () =
  with_store (fun path ->
      fill path "flow-a" (sample_records @ [ ("alpha", "superseded") ]);
      let t, _, _ = Segstore.open_store ~flow:"flow-a" path in
      let gen0 = Segstore.generation t in
      Segstore.rewrite t [ ("alpha", "superseded"); ("beta", String.make 40 'x') ];
      Alcotest.(check int) "compaction drops duplicates" 2 (Segstore.records t);
      Alcotest.(check bool) "generation advances" true (Segstore.generation t > gen0);
      Segstore.close t;
      (* litter the directory as an interrupted compaction would *)
      write_file (Filename.concat path "seg-9999-0000.seg") "garbage";
      write_file (Filename.concat path "stray.tmp") "garbage";
      let t, loaded, note = Segstore.open_store ~flow:"flow-a" path in
      Alcotest.(check bool) "strays do not corrupt recovery" true (note = None);
      Alcotest.(check (list (pair string string)))
        "compacted records survive"
        [ ("alpha", "superseded"); ("beta", String.make 40 'x') ]
        loaded;
      Segstore.close t;
      Alcotest.(check bool) "stray segment swept" false
        (Sys.file_exists (Filename.concat path "seg-9999-0000.seg"));
      Alcotest.(check bool) "stray temp swept" false
        (Sys.file_exists (Filename.concat path "stray.tmp")))

let test_segment_roll () =
  with_store (fun path ->
      let t, _, _ = Segstore.open_store ~segment_bytes:64 ~flow:"flow-a" path in
      for i = 0 to 9 do
        Segstore.append t ~key:(Printf.sprintf "k%02d" i) (String.make 30 'p')
      done;
      let segs = Segstore.segment_names t in
      Alcotest.(check bool) "tiny bound rolls segments" true
        (List.length segs > 1);
      Segstore.close t;
      let _, loaded, note = Segstore.open_store ~segment_bytes:64 ~flow:"flow-a" path in
      Alcotest.(check bool) "multi-segment reopen is clean" true (note = None);
      Alcotest.(check int) "all records recovered" 10 (List.length loaded);
      (* a mid-record defect in a NON-last segment is corruption, not a tear *)
      let first = Filename.concat path (List.hd segs) in
      let pristine = read_file first in
      write_file first (String.sub pristine 0 (String.length pristine - 1));
      (match Segstore.validate path with
      | Ok _ -> Alcotest.fail "short non-last segment validated as clean"
      | Error (Stage_error.Storage_fault f) ->
          Alcotest.(check string) "fault names the short segment"
            (List.hd segs) f.segment
      | Error e ->
          Alcotest.fail ("wrong error type: " ^ Stage_error.to_string e));
      write_file first pristine;
      ignore (expect_info path))

let test_missing_and_foreign_paths () =
  with_store (fun path ->
      Alcotest.(check bool) "absent path is not a store" false
        (Segstore.is_store path);
      (match Segstore.validate path with
      | Ok _ -> Alcotest.fail "missing store validated"
      | Error _ -> ());
      fill path "flow-a" sample_records;
      Alcotest.(check bool) "store detected" true (Segstore.is_store path);
      (* a malformed manifest is a typed fault naming MANIFEST *)
      write_file (Filename.concat path Segstore.manifest_name) "not json {";
      match Segstore.validate path with
      | Ok _ -> Alcotest.fail "malformed manifest validated"
      | Error (Stage_error.Storage_fault f) ->
          Alcotest.(check string) "fault names the manifest"
            Segstore.manifest_name f.segment
      | Error e -> Alcotest.fail ("wrong error type: " ^ Stage_error.to_string e))

let suite =
  [
    ("roundtrip append order", `Quick, test_roundtrip_append_order);
    ("truncation matrix", `Quick, test_truncation_matrix);
    ("corrupt byte typed", `Quick, test_corrupt_byte_is_typed);
    ("flow mismatch reads cold", `Quick, test_flow_mismatch_reads_cold);
    ("rewrite compacts and sweeps", `Quick, test_rewrite_compacts_and_sweeps);
    ("segment roll", `Quick, test_segment_roll);
    ("missing and foreign paths", `Quick, test_missing_and_foreign_paths);
  ]
