(* Tests for Gap_dse: parameter-space enumeration, content-addressed cache
   keys, the persistent LRU cache, the Domain worker pool, Pareto
   extraction, and the sweep engine's determinism/interruption contracts. *)

module Space = Gap_dse.Space
module Eval = Gap_dse.Eval
module Key = Gap_dse.Key
module Cache = Gap_dse.Cache
module Segstore = Gap_dse.Segstore
module Pool = Gap_dse.Pool
module Frontier = Gap_dse.Frontier
module Sweep = Gap_dse.Sweep
module Obs = Gap_obs.Obs
module Json = Gap_obs.Json
module Fault = Gap_resilience.Fault
module Stage_error = Gap_resilience.Stage_error

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      try Unix.rmdir path with Unix.Unix_error _ -> ()
    end
    else try Sys.remove path with Sys_error _ -> ()

let with_tmp_store f =
  let path = Filename.temp_file "gap_dse_test" ".store" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () ->
      rm_rf path;
      rm_rf (path ^ ".migrate"))
    (fun () -> f path)

(* the (entries, flow) view of the on-disk store the old JSON read_store
   gave; fails the test on anything but a healthy store *)
let store_summary path =
  match Cache.inspect_store path with
  | Cache.Store i -> (i.Cache.si_entries, i.Cache.si_flow)
  | Cache.Missing m | Cache.Foreign m -> Alcotest.fail m
  | Cache.Corrupt e -> Alcotest.fail (Stage_error.to_string e)

let all_preset_points () =
  List.concat_map (fun (_, _, space) -> Space.enumerate space) Space.presets

(* --- space --- *)

let test_space_enumeration () =
  List.iter
    (fun (name, _, space) ->
      let pts = Space.enumerate space in
      Alcotest.(check int)
        (name ^ " size matches enumeration")
        (Space.size space) (List.length pts);
      Alcotest.(check bool)
        (name ^ " enumeration deterministic")
        true
        (pts = Space.enumerate space))
    Space.presets;
  let smoke = Option.get (Space.find_preset "smoke") in
  Alcotest.(check int) "smoke is 4 points" 4 (Space.size smoke);
  Alcotest.(check bool) "unknown preset" true (Space.find_preset "nope" = None)

let test_space_canonical_roundtrip () =
  List.iter
    (fun p ->
      match Space.point_of_json (Space.point_json p) with
      | Ok p' ->
          Alcotest.(check string)
            "canonical string survives JSON round-trip"
            (Space.to_canonical p) (Space.to_canonical p');
          Alcotest.(check bool) "point round-trips" true (p = p')
      | Error e -> Alcotest.fail e)
    (all_preset_points ())

(* --- the backend axis --- *)

let fpga_point = { Space.baseline with Space.backend = Space.Fpga }

let test_backend_axis_distinct () =
  Alcotest.(check bool) "canonical strings differ" false
    (Space.to_canonical Space.baseline = Space.to_canonical fpga_point);
  Alcotest.(check bool) "cache keys differ" false
    (Key.of_point Space.baseline = Key.of_point fpga_point);
  let backend_preset = Option.get (Space.find_preset "backend") in
  Alcotest.(check int) "backend preset is 8 points" 8 (Space.size backend_preset);
  let backends =
    List.sort_uniq compare
      (List.map (fun p -> p.Space.backend) (Space.enumerate backend_preset))
  in
  Alcotest.(check int) "both backends enumerated" 2 (List.length backends)

let test_point_of_json_backend_defaults_to_asic () =
  (* documents persisted before the axis existed carry no backend field *)
  let stripped =
    match Space.point_json Space.baseline with
    | Json.Obj kvs -> Json.Obj (List.filter (fun (k, _) -> k <> "backend") kvs)
    | j -> j
  in
  (match Space.point_of_json stripped with
  | Ok p -> Alcotest.(check bool) "defaults to Asic" true (p.Space.backend = Space.Asic)
  | Error e -> Alcotest.fail e);
  match Space.point_of_json (Space.point_json fpga_point) with
  | Ok p -> Alcotest.(check bool) "fpga round-trips" true (p.Space.backend = Space.Fpga)
  | Error e -> Alcotest.fail e

let test_eval_fpga_charm_scaling () =
  let asic = Eval.point Space.baseline in
  let fpga = Eval.point fpga_point in
  let r = Gap_tech.Charm.ratios Gap_tech.Charm.Logic in
  Alcotest.(check (float 1e-9)) "delay x freq gap"
    (asic.Eval.delay_ps *. r.Gap_tech.Charm.freq) fpga.Eval.delay_ps;
  Alcotest.(check (float 1e-9)) "area x area gap"
    (asic.Eval.area *. r.Gap_tech.Charm.area) fpga.Eval.area;
  Alcotest.(check (float 1e-9)) "power x power gap"
    (asic.Eval.power *. r.Gap_tech.Charm.dynamic_power) fpga.Eval.power;
  Alcotest.(check bool) "factors are backend-orthogonal" true
    (asic.Eval.factors = fpga.Eval.factors)

(* --- keys: collision-freedom and order-stability over every preset --- *)

let test_keys_distinct_and_stable () =
  let pts = all_preset_points () in
  let keys = List.map Key.of_point pts in
  let distinct_pts =
    List.sort_uniq compare (List.map Space.to_canonical pts)
  in
  Alcotest.(check int)
    "no key collisions across all preset points"
    (List.length distinct_pts)
    (List.length (List.sort_uniq compare keys));
  Alcotest.(check bool)
    "keys stable on recomputation" true
    (keys = List.map Key.of_point pts)

(* --- eval --- *)

let paper_product = 4.00 *. 1.25 *. 1.25 *. 1.50 *. 1.90

let test_eval_corner_composite () =
  let m = Eval.point Space.custom_corner in
  (* every factor sits exactly at its paper anchor at the corner *)
  Alcotest.(check (float 0.)) "corner composite is exactly x17.8125"
    paper_product m.Eval.composite;
  List.iter2
    (fun (name, expect) (name', got) ->
      Alcotest.(check string) "factor order" name name';
      Alcotest.(check (float 0.)) (name ^ " anchored") expect got)
    [
      ("pipelining", 4.00);
      ("floorplanning", 1.25);
      ("sizing", 1.25);
      ("domino", 1.50);
      ("variation", 1.90);
    ]
    m.Eval.factors

let test_eval_baseline_composite () =
  let m = Eval.point Space.baseline in
  Alcotest.(check (float 0.)) "baseline composite is 1" 1. m.Eval.composite;
  Alcotest.(check (float 0.)) "baseline area is 1" 1. m.Eval.area;
  Alcotest.(check (float 0.)) "baseline power is 1" 1. m.Eval.power

let test_eval_deterministic_and_json () =
  List.iter
    (fun p ->
      let a = Eval.point p and b = Eval.point p in
      Alcotest.(check bool) "bit-equal on re-evaluation" true (a = b);
      match Eval.of_json (Eval.to_json a) with
      | Ok a' -> Alcotest.(check bool) "metrics JSON round-trip" true (a = a')
      | Error e -> Alcotest.fail e)
    (Space.enumerate (Option.get (Space.find_preset "smoke")))

let test_eval_rejects_malformed () =
  Alcotest.check_raises "depth 0"
    (Invalid_argument "Gap_dse.Eval.point: depth < 1") (fun () ->
      ignore (Eval.point { Space.baseline with Space.depth = 0 }))

(* --- cache --- *)

let test_cache_lru_eviction () =
  let c = Cache.create ~capacity:2 () in
  let p1 = Space.baseline in
  let p2 = { Space.baseline with Space.depth = 2 } in
  let p3 = { Space.baseline with Space.depth = 3 } in
  Cache.add c p1 (Eval.point p1);
  Cache.add c p2 (Eval.point p2);
  ignore (Cache.find c p1);
  (* p2 is now least-recently used; adding p3 must evict it *)
  Cache.add c p3 (Eval.point p3);
  let s = Cache.stats c in
  Alcotest.(check int) "capacity held" 2 s.Cache.entries;
  Alcotest.(check int) "one eviction" 1 s.Cache.evictions;
  Alcotest.(check bool) "p1 survived" true (Cache.find c p1 <> None);
  Alcotest.(check bool) "p2 evicted" true (Cache.find c p2 = None)

let test_cache_persistence_and_clear () =
  with_tmp_store (fun path ->
      let c = Cache.create ~store:path () in
      Cache.add c Space.baseline (Eval.point Space.baseline);
      Cache.flush c;
      let n, flow = store_summary path in
      Alcotest.(check int) "one entry on disk" 1 n;
      Alcotest.(check string) "current flow" Eval.flow_version flow;
      let c2 = Cache.create ~store:path () in
      Alcotest.(check bool) "entry reloads" true
        (Cache.find c2 Space.baseline <> None);
      Cache.clear path;
      let n, _ = store_summary path in
      Alcotest.(check int) "cleared" 0 n;
      let c3 = Cache.create ~store:path () in
      Alcotest.(check bool) "cold after clear" true
        (Cache.find c3 Space.baseline = None))

let replace_substring ~from ~into s =
  let fl = String.length from in
  let buf = Buffer.create (String.length s) in
  let i = ref 0 in
  while !i <= String.length s - fl do
    if String.sub s !i fl = from then begin
      Buffer.add_string buf into;
      i := !i + fl
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.add_string buf (String.sub s !i (String.length s - !i));
  Buffer.contents buf

let test_cache_flow_version_mismatch_reads_cold () =
  with_tmp_store (fun path ->
      let c = Cache.create ~store:path () in
      Cache.add c Space.baseline (Eval.point Space.baseline);
      Cache.flush c;
      (* age the store: doctor the MANIFEST flow to an older version *)
      let manifest = Filename.concat path Segstore.manifest_name in
      let ic = open_in_bin manifest in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let stale = replace_substring ~from:Eval.flow_version ~into:"gap-dse-0" s in
      Gap_util.Atomic_io.write_string manifest stale;
      let c2 = Cache.create ~store:path () in
      Alcotest.(check int) "stale store loads empty" 0 (Cache.stats c2).Cache.entries;
      Alcotest.(check bool) "lookup misses" true
        (Cache.find c2 Space.baseline = None);
      (* the next flush rewrites the store at the current version *)
      Cache.add c2 Space.baseline (Eval.point Space.baseline);
      Cache.flush c2;
      let n, flow = store_summary path in
      Alcotest.(check string) "rewritten at current flow" Eval.flow_version flow;
      Alcotest.(check int) "only the fresh entry survives" 1 n)

let test_pre_backend_store_not_served () =
  (* a store written at the pre-backend-axis flow version must read cold:
     its keys were hashed without the backend field, and serving them into
     the enlarged space would alias ASIC results onto FPGA points *)
  with_tmp_store (fun path ->
      let c = Cache.create ~store:path () in
      Cache.add c Space.baseline (Eval.point Space.baseline);
      Cache.flush c;
      let manifest = Filename.concat path Segstore.manifest_name in
      let ic = open_in_bin manifest in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Alcotest.(check bool) "current flow is gap-dse-2" true
        (Eval.flow_version = "gap-dse-2");
      let stale = replace_substring ~from:"gap-dse-2" ~into:"gap-dse-1" s in
      Gap_util.Atomic_io.write_string manifest stale;
      let c2 = Cache.create ~store:path () in
      Alcotest.(check bool) "pre-backend entry not served" true
        (Cache.find c2 Space.baseline = None);
      Alcotest.(check bool) "fpga point also cold" true
        (Cache.find c2 fpga_point = None))

let test_cache_corrupt_store_reads_cold () =
  with_tmp_store (fun path ->
      Gap_util.Atomic_io.write_string path "{not json";
      let c = Cache.create ~store:path () in
      Alcotest.(check int) "corrupt store loads empty" 0
        (Cache.stats c).Cache.entries)

(* --- pool --- *)

let mc_model = Gap_variation.Model.make Gap_variation.Model.mature

(* MC-weighted job: heavy enough that spawned workers reliably claim work *)
let mc_job dies =
  Gap_variation.Montecarlo.percentile
    (Gap_variation.Montecarlo.simulate ~model:mc_model ~nominal_mhz:250. ~dies ())
    50.

let test_pool_matches_sequential () =
  let jobs = Array.init 12 (fun i -> 1000 + (137 * i)) in
  let expected = Array.map (fun d -> Ok (mc_job d)) jobs in
  List.iter
    (fun domains ->
      let got = Pool.map ~domains ~stage:"dse.eval" mc_job jobs in
      Alcotest.(check bool)
        (Printf.sprintf "domains=%d bit-identical to sequential" domains)
        true (got = expected))
    [ 1; 2; 4 ]

let test_pool_worker_kill_degrades_without_losing_points () =
  let jobs = Array.init 12 (fun i -> 1000 + (137 * i)) in
  let expected = Array.map (fun d -> Ok (mc_job d)) jobs in
  let sink = Obs.recorder () in
  let result, report =
    Fault.with_plan
      [ Fault.spec "dse.worker" Stage_error.Worker_kill ]
      (fun () ->
        Obs.with_sink sink (fun () -> Pool.map ~domains:4 ~stage:"dse.eval" mc_job jobs))
  in
  (match List.assoc_opt "dse.worker" report.Fault.injected with
  | Some n -> Alcotest.(check bool) "fault injected" true (n >= 1)
  | None -> Alcotest.fail "dse.worker site never injected");
  Alcotest.(check bool) "pool degraded" true
    (Obs.counter_value sink "dse.pool.degraded" >= 1);
  match result with
  | Ok got ->
      Alcotest.(check bool) "no point lost, results bit-identical" true
        (got = expected)
  | Error e -> Alcotest.failf "pool raised: %s" (Printexc.to_string e)

(* --- frontier --- *)

let test_pareto_three_point_fixture () =
  let o d a p = { Frontier.delay_ps = d; area = a; power = p } in
  let pts =
    [
      ("fast-big", o 1. 3. 1.);
      ("balanced", o 2. 2. 2.);
      ("slow-small", o 3. 1. 3.);
      ("dominated", o 3. 3. 3.);
    ]
  in
  let front = List.map fst (Frontier.pareto pts) in
  Alcotest.(check (list string))
    "three survivors in input order"
    [ "fast-big"; "balanced"; "slow-small" ] front;
  Alcotest.(check bool) "dominates is strict" false
    (Frontier.dominates (o 1. 1. 1.) (o 1. 1. 1.));
  let tied = [ ("a", o 1. 1. 1.); ("b", o 1. 1. 1.) ] in
  Alcotest.(check int) "equal points both stay" 2
    (List.length (Frontier.pareto tied))

(* --- sweep --- *)

let smoke = Option.get (Space.find_preset "smoke")

let test_sweep_cold_warm_byte_identity () =
  with_tmp_store (fun path ->
      let cold = Sweep.run ~store:path ~name:"smoke" smoke in
      let warm = Sweep.run ~store:path ~name:"smoke" smoke in
      Alcotest.(check string) "tables byte-identical"
        (Sweep.table cold) (Sweep.table warm);
      Alcotest.(check int) "cold run all misses" 4 cold.Sweep.stats.Cache.misses;
      Alcotest.(check int) "cold run no hits" 0 cold.Sweep.stats.Cache.hits;
      Alcotest.(check int) "warm run all hits" 4 warm.Sweep.stats.Cache.hits;
      Alcotest.(check int) "warm run no misses" 0 warm.Sweep.stats.Cache.misses;
      Alcotest.(check (float 0.)) "warm hit rate 1.0" 1.
        (Cache.hit_rate warm.Sweep.stats))

let test_sweep_hit_counters_in_obs () =
  with_tmp_store (fun path ->
      ignore (Sweep.run ~store:path ~name:"smoke" smoke);
      let sink = Obs.recorder () in
      ignore (Obs.with_sink sink (fun () -> Sweep.run ~store:path ~name:"smoke" smoke));
      Alcotest.(check int) "dse.cache.hit counter" 4
        (Obs.counter_value sink "dse.cache.hit");
      Alcotest.(check int) "dse.cache.miss counter" 0
        (Obs.counter_value sink "dse.cache.miss");
      Alcotest.(check int) "dse.pool.jobs counts misses only" 0
        (Obs.counter_value sink "dse.pool.jobs"))

let test_sweep_domains_identical () =
  let t domains = Sweep.table (Sweep.run ~domains ~name:"smoke" smoke) in
  let d1 = t 1 in
  Alcotest.(check string) "domains 2 = domains 1" d1 (t 2);
  Alcotest.(check string) "domains 4 = domains 1" d1 (t 4)

let test_sweep_interrupt_and_resume () =
  with_tmp_store (fun path ->
      (* a killed sweep = one that stopped after k fresh evaluations with a
         flush after each; the store must be a valid, loadable document *)
      let partial = Sweep.run ~store:path ~stop_after:2 ~name:"smoke" smoke in
      Alcotest.(check int) "partial run covers 2 points" 2
        (Array.length partial.Sweep.points);
      let n, flow = store_summary path in
      Alcotest.(check int) "store holds the 2 finished points" 2 n;
      Alcotest.(check string) "valid current-flow store" Eval.flow_version flow;
      (* resume: the full sweep completes and matches an uninterrupted one *)
      let resumed = Sweep.run ~store:path ~name:"smoke" smoke in
      Alcotest.(check int) "resume served 2 from the store" 2
        resumed.Sweep.stats.Cache.hits;
      Alcotest.(check int) "resume evaluated the remaining 2" 2
        resumed.Sweep.stats.Cache.misses;
      let fresh = Sweep.run ~name:"smoke" smoke in
      Alcotest.(check string) "resumed table byte-identical to fresh"
        (Sweep.table fresh) (Sweep.table resumed))

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_pareto_contains_paper_composite () =
  let space = Option.get (Space.find_preset "factor-axes") in
  let r = Sweep.run ~name:"factor-axes" space in
  let front = Sweep.pareto r in
  Alcotest.(check bool) "corner point on the frontier" true
    (List.exists
       (fun ((p, _), _) ->
         Space.to_canonical p = Space.to_canonical Space.custom_corner)
       front);
  let tbl = Sweep.pareto_table r in
  Alcotest.(check bool) "frontier renders the paper's x17.8" true
    (contains ~sub:"x17.8" tbl);
  match
    List.find_opt
      (fun ((p, _), _) ->
        Space.to_canonical p = Space.to_canonical Space.custom_corner)
      front
  with
  | Some ((_, m), _) ->
      Alcotest.(check (float 0.)) "corner carries the exact x17.8125 composite"
        paper_product m.Eval.composite
  | None -> Alcotest.fail "corner missing from frontier"

let test_sweep_json_document () =
  with_tmp_store (fun path ->
      let r = Sweep.run ~store:path ~name:"smoke" smoke in
      let doc = Sweep.to_json r in
      (* must be a valid, self-contained document *)
      match Json.of_string (Json.to_string doc) with
      | Error e -> Alcotest.fail e
      | Ok doc' -> (
          Alcotest.(check bool) "round-trips" true (doc = doc');
          match (Json.member "cache" doc, Json.member "points" doc) with
          | Some cache, Some (Json.List pts) ->
              Alcotest.(check int) "all points present" 4 (List.length pts);
              Alcotest.(check bool) "cache accounting present" true
                (Json.member "hit_rate" cache <> None)
          | _ -> Alcotest.fail "missing cache/points members"))

let suite =
  [
    ("space enumeration", `Quick, test_space_enumeration);
    ("space canonical round-trip", `Quick, test_space_canonical_roundtrip);
    ("backend axis distinct points/keys", `Quick, test_backend_axis_distinct);
    ("backend field defaults to asic", `Quick, test_point_of_json_backend_defaults_to_asic);
    ("fpga eval applies Charm ratios", `Quick, test_eval_fpga_charm_scaling);
    ("pre-backend store reads cold", `Quick, test_pre_backend_store_not_served);
    ("keys distinct and stable", `Quick, test_keys_distinct_and_stable);
    ("eval corner composite x17.8", `Quick, test_eval_corner_composite);
    ("eval baseline composite 1.0", `Quick, test_eval_baseline_composite);
    ("eval deterministic + JSON", `Quick, test_eval_deterministic_and_json);
    ("eval rejects malformed", `Quick, test_eval_rejects_malformed);
    ("cache LRU eviction", `Quick, test_cache_lru_eviction);
    ("cache persistence + clear", `Quick, test_cache_persistence_and_clear);
    ("cache stale flow reads cold", `Quick, test_cache_flow_version_mismatch_reads_cold);
    ("cache corrupt store reads cold", `Quick, test_cache_corrupt_store_reads_cold);
    ("pool matches sequential at 1/2/4 domains", `Quick, test_pool_matches_sequential);
    ("pool worker kill degrades, loses nothing", `Quick,
     test_pool_worker_kill_degrades_without_losing_points);
    ("pareto fixture", `Quick, test_pareto_three_point_fixture);
    ("sweep cold/warm byte-identity", `Quick, test_sweep_cold_warm_byte_identity);
    ("sweep hit accounting via Gap_obs", `Quick, test_sweep_hit_counters_in_obs);
    ("sweep identical across domains", `Quick, test_sweep_domains_identical);
    ("sweep interrupt + resume", `Quick, test_sweep_interrupt_and_resume);
    ("pareto reproduces x17.8", `Slow, test_pareto_contains_paper_composite);
    ("sweep JSON document", `Quick, test_sweep_json_document);
  ]
