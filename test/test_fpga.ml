(* Tests for Gap_fpga: the backend abstraction adds nothing to the ASIC
   flow (byte-identity), LUT mapping produces clean functionally-plausible
   netlists, the Charm calibration gates hold, and pipeline-stage-resolved
   STA slack is a partition of the whole-design endpoint set. *)

module Netlist = Gap_netlist.Netlist
module Check = Gap_netlist.Check
module Verilog = Gap_netlist.Verilog
module Cell = Gap_liberty.Cell
module Sta = Gap_sta.Sta
module Flow = Gap_synth.Flow
module Charm = Gap_tech.Charm
module Fabric = Gap_fpga.Fabric
module Lutmap = Gap_fpga.Lutmap
module Backend = Gap_fpga.Backend
module Gap3 = Gap_fpga.Gap3

let cla16 () = Gap_datapath.Adders.cla_adder 16
let alu8 () = Gap_datapath.Alu.alu 8

(* --- the ASIC wrapper must be the flow, byte for byte --- *)

let test_asic_backend_matches_flow () =
  let lib =
    Gap_liberty.Libgen.make Gap_tech.Tech.asic_025um Gap_liberty.Libgen.rich
  in
  let b = Backend.asic ~lib () in
  let i = Backend.implement b ~name:"cla16" (cla16 ()) in
  let o = Flow.run ~lib ~name:"cla16" (cla16 ()) in
  Alcotest.(check (float 0.)) "identical min period"
    o.Flow.sta.Sta.min_period_ps i.Backend.min_period_ps;
  Alcotest.(check (float 0.)) "identical area"
    (Netlist.area_um2 o.Flow.netlist) i.Backend.area_um2;
  Alcotest.(check string) "identical structural Verilog"
    (Verilog.write o.Flow.netlist)
    (Verilog.write i.Backend.netlist)

(* --- LUT mapping --- *)

let test_lut_netlist_clean_and_bounded () =
  let b = Backend.fpga () in
  let i = Backend.implement b ~name:"alu8" (alu8 ()) in
  let nl = i.Backend.netlist in
  Alcotest.(check bool) "no Error diagnostics" true (Check.is_clean nl);
  for inst = 0 to Netlist.num_instances nl - 1 do
    let cell = Netlist.cell_of nl inst in
    if not (Netlist.is_flop nl inst) then begin
      Alcotest.(check bool)
        (Printf.sprintf "%s is a LUT" cell.Cell.name)
        true
        (String.length cell.Cell.base >= 3 && String.sub cell.Cell.base 0 3 = "LUT");
      Alcotest.(check bool) "fan-in within k" true
        (cell.Cell.n_inputs <= Fabric.logic.Fabric.lut_k)
    end
  done;
  Alcotest.(check bool) "positive period" true (i.Backend.min_period_ps > 0.)

let test_lutmap_simulates_like_aig () =
  (* the mapped netlist must compute the same function as the source AIG *)
  let g = cla16 () in
  let r = Lutmap.map ~fabric:Fabric.logic ~name:"cla16" g in
  let nl = r.Lutmap.netlist in
  let n_in = Netlist.num_inputs nl in
  let st = Gap_netlist.Sim.initial nl in
  let rng = Random.State.make [| 0x5eed |] in
  for _ = 1 to 64 do
    let inputs = Array.init n_in (fun _ -> Random.State.bool rng) in
    let want = Gap_logic.Aig.eval g inputs in
    let got = Gap_netlist.Sim.eval nl st inputs in
    Alcotest.(check (array bool)) "vector matches" want got
  done

(* --- Charm calibration gates --- *)

let test_charm_gates_hold () =
  let t = Gap3.run () in
  List.iter
    (fun (g : Gap3.gate) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: x%.2f within 15%% of x%.1f" g.Gap3.metric
           g.Gap3.measured g.Gap3.target_v)
        true g.Gap3.ok)
    (Gap3.gates t);
  Alcotest.(check bool) "overall ok" true (Gap3.ok t);
  (* the three-way composition is the literal product of its legs *)
  Alcotest.(check (float 1e-9)) "FPGA->custom product"
    (t.Gap3.logic.Gap3.freq_ratio *. t.Gap3.asic_custom_speed)
    t.Gap3.fpga_custom_speed

(* --- stage-resolved slack --- *)

let test_stage_slack_partitions_endpoints () =
  let i = Backend.implement (Backend.fpga ()) ~name:"cla16" (cla16 ()) in
  let nl = i.Backend.netlist in
  let r = Gap_retime.Pipeline.pipeline ~stages:4 nl in
  Alcotest.(check int) "4 stages requested" 4 r.Gap_retime.Pipeline.stages;
  Gap_fpga.Route.annotate ~fabric:Fabric.logic nl;
  let sta = Sta.analyze nl in
  let stages = Sta.slack_by_stage nl sta in
  Alcotest.(check int) "one bucket per pipeline stage" 4 (List.length stages);
  Alcotest.(check (list int)) "stages ascending" [ 1; 2; 3; 4 ]
    (List.map (fun s -> s.Sta.stage) stages);
  Alcotest.(check int) "endpoint partition is total"
    sta.Sta.endpoint_count
    (List.fold_left (fun acc s -> acc + s.Sta.endpoints) 0 stages);
  (* analyzed at its own min period: the binding stage closes at exactly
     zero slack and no stage is negative *)
  let worsts = List.map (fun s -> s.Sta.worst_ps) stages in
  Alcotest.(check (float 1e-6)) "binding stage at zero slack" 0.
    (List.fold_left Float.min infinity worsts);
  List.iter
    (fun w -> Alcotest.(check bool) "no negative stage slack" true (w >= -1e-6))
    worsts;
  List.iter
    (fun (s : Sta.stage_slack) ->
      Alcotest.(check bool) "worst <= mean" true
        (s.Sta.worst_ps
        <= (s.Sta.total_ps /. float_of_int (max 1 s.Sta.endpoints)) +. 1e-9))
    stages

let test_stage_slack_combinational_is_one_stage () =
  let i = Backend.implement (Backend.fpga ()) ~name:"cla16" (cla16 ()) in
  let sta = i.Backend.sta in
  match Sta.slack_by_stage i.Backend.netlist sta with
  | [ s ] ->
      Alcotest.(check int) "stage 1" 1 s.Sta.stage;
      Alcotest.(check int) "all endpoints in it" sta.Sta.endpoint_count
        s.Sta.endpoints
  | l -> Alcotest.failf "expected one stage, got %d" (List.length l)

let suite =
  [
    ("asic backend is the flow, byte for byte", `Quick, test_asic_backend_matches_flow);
    ("lut netlist clean and k-bounded", `Quick, test_lut_netlist_clean_and_bounded);
    ("lut mapping preserves the function", `Quick, test_lutmap_simulates_like_aig);
    ("charm calibration gates hold", `Slow, test_charm_gates_hold);
    ("stage slack partitions endpoints", `Quick, test_stage_slack_partitions_endpoints);
    ("combinational design is one stage", `Quick, test_stage_slack_combinational_is_one_stage);
  ]
