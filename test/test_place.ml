(* Tests for Gap_place: HPWL, annealing placer, slicing floorplanner, wire
   estimation. *)

module Hpwl = Gap_place.Hpwl
module Placer = Gap_place.Placer
module Floorplan = Gap_place.Floorplan
module Netlist = Gap_netlist.Netlist
module Libgen = Gap_liberty.Libgen

let lib = lazy (Libgen.make Gap_tech.Tech.asic_025um Libgen.rich)

let mapped_circuit () =
  Gap_synth.Mapper.map_aig ~lib:(Lazy.force lib) (Gap_datapath.Adders.cla_adder 8)

let check_close msg tol expected actual = Alcotest.(check (float tol)) msg expected actual

let test_hpwl_points () =
  check_close "empty" 1e-9 0. (Hpwl.of_points []);
  check_close "singleton" 1e-9 0. (Hpwl.of_points [ (3., 4.) ]);
  check_close "rectangle" 1e-9 7. (Hpwl.of_points [ (0., 0.); (3., 4.); (1., 1.) ]);
  check_close "line" 1e-9 5. (Hpwl.of_points [ (0., 0.); (5., 0.) ])

let test_hpwl_netlist () =
  let nl = mapped_circuit () in
  check_close "unplaced = 0" 1e-9 0. (Hpwl.total_um nl);
  ignore (Placer.place_random nl);
  Alcotest.(check bool) "placed > 0" true (Hpwl.total_um nl > 0.)

let test_hpwl_cache_matches_scratch () =
  (* after many random moves through the incremental cache, every cached
     per-net length and the total must equal a from-scratch recomputation
     bit for bit (min/max boxes are order-independent and the cache uses the
     same length expression) *)
  let nl = mapped_circuit () in
  ignore (Placer.place_random nl);
  let cache = Hpwl.Cache.create nl in
  let rng = Gap_util.Rng.create ~seed:99L () in
  let n = Netlist.num_instances nl in
  for _ = 1 to 1000 do
    let i = Gap_util.Rng.int rng n in
    let x = Gap_util.Rng.float rng 500. and y = Gap_util.Rng.float rng 500. in
    Hpwl.Cache.move cache i ~x_um:x ~y_um:y
  done;
  for net = 0 to Netlist.num_nets nl - 1 do
    Alcotest.(check (float 0.))
      (Printf.sprintf "net %d exact" net)
      (Hpwl.net_length_um nl net)
      (Hpwl.Cache.net_length_um cache net)
  done;
  Alcotest.(check (float 0.)) "total exact" (Hpwl.total_um nl) (Hpwl.Cache.total_um cache)

let test_hpwl_cache_rollback () =
  (* snapshot -> move -> set_xy + rollback must restore every affected net
     length exactly *)
  let nl = mapped_circuit () in
  ignore (Placer.place_random nl);
  let cache = Hpwl.Cache.create nl in
  let rng = Gap_util.Rng.create ~seed:5L () in
  let n = Netlist.num_instances nl in
  for _ = 1 to 200 do
    let i = Gap_util.Rng.int rng n in
    let x0, y0 =
      match Netlist.location nl i with Some p -> p | None -> Alcotest.fail "unplaced"
    in
    let nets = Hpwl.Cache.nets_of_instance cache i in
    let m = Array.length nets in
    let before = Array.map (Hpwl.Cache.net_length_um cache) nets in
    Hpwl.Cache.snapshot cache nets m;
    Hpwl.Cache.move cache i ~x_um:(Gap_util.Rng.float rng 300.)
      ~y_um:(Gap_util.Rng.float rng 300.);
    Hpwl.Cache.set_xy cache i ~x_um:x0 ~y_um:y0;
    Hpwl.Cache.rollback cache nets m;
    Netlist.place nl i ~x_um:x0 ~y_um:y0;
    let after = Array.map (Hpwl.Cache.net_length_um cache) nets in
    Alcotest.(check bool) "rollback restores lengths" true (before = after)
  done;
  (* the cache must still agree with the (restored) netlist *)
  Alcotest.(check (float 0.)) "still consistent" (Hpwl.total_um nl) (Hpwl.Cache.total_um cache)

let test_placer_improves () =
  let nl = mapped_circuit () in
  let stats = Placer.place ~options:{ Placer.default_options with Placer.sweeps = 30 } nl in
  Alcotest.(check bool) "final <= initial" true
    (stats.Placer.final_hpwl_um <= stats.Placer.initial_hpwl_um);
  Alcotest.(check bool) "substantial improvement" true
    (stats.Placer.final_hpwl_um < 0.8 *. stats.Placer.initial_hpwl_um);
  Alcotest.(check bool) "moves accepted" true (stats.Placer.moves_accepted > 0)

let test_placer_places_everything () =
  let nl = mapped_circuit () in
  ignore (Placer.place ~options:{ Placer.default_options with Placer.sweeps = 5 } nl);
  for i = 0 to Netlist.num_instances nl - 1 do
    Alcotest.(check bool) "instance placed" true (Netlist.location nl i <> None)
  done

let test_placer_deterministic () =
  let run () =
    let nl = mapped_circuit () in
    let s = Placer.place ~options:{ Placer.default_options with Placer.sweeps = 10 } nl in
    s.Placer.final_hpwl_um
  in
  check_close "same seed same result" 1e-9 (run ()) (run ())

let test_placer_no_slot_collision () =
  let nl = mapped_circuit () in
  ignore (Placer.place ~options:{ Placer.default_options with Placer.sweeps = 10 } nl);
  let seen = Hashtbl.create 64 in
  for i = 0 to Netlist.num_instances nl - 1 do
    match Netlist.location nl i with
    | Some (x, y) ->
        let key = (int_of_float x, int_of_float y) in
        Alcotest.(check bool) "one cell per site" false (Hashtbl.mem seen key);
        Hashtbl.add seen key ()
    | None -> Alcotest.fail "unplaced"
  done

let test_die_side () =
  let nl = mapped_circuit () in
  let side = Placer.die_side_um nl in
  Alcotest.(check bool) "die fits area" true
    (side *. side >= Netlist.area_um2 nl)

(* --- floorplan --- *)

let blocks n =
  let rng = Gap_util.Rng.create ~seed:17L () in
  Array.init n (fun i ->
      {
        Floorplan.block_name = Printf.sprintf "b%d" i;
        w_um = 100. +. Gap_util.Rng.float rng 400.;
        h_um = 100. +. Gap_util.Rng.float rng 400.;
      })

let test_floorplan_initial_valid () =
  let fp = Floorplan.initial (blocks 8) in
  Alcotest.(check bool) "valid" true (Floorplan.is_valid fp);
  let layout = Floorplan.evaluate fp in
  Alcotest.(check bool) "area covers blocks" true
    (layout.Floorplan.area_um2 >= Floorplan.blocks_area_um2 fp -. 1e-6)

let rects_overlap (x1, y1, w1, h1) (x2, y2, w2, h2) =
  x1 < x2 +. w2 -. 1e-9 && x2 < x1 +. w1 -. 1e-9 && y1 < y2 +. h2 -. 1e-9
  && y2 < y1 +. h1 -. 1e-9

let check_no_overlap (fp : Floorplan.t) =
  let layout = Floorplan.evaluate fp in
  let rects =
    Array.mapi
      (fun i (x, y) -> (x, y, fp.Floorplan.blocks.(i).Floorplan.w_um, fp.Floorplan.blocks.(i).Floorplan.h_um))
      layout.Floorplan.positions
  in
  Array.iteri
    (fun i r1 ->
      Array.iteri
        (fun j r2 ->
          if i < j then
            Alcotest.(check bool)
              (Printf.sprintf "blocks %d,%d overlap-free" i j)
              false (rects_overlap r1 r2))
        rects)
    rects;
  (* all blocks inside the bounding box *)
  Array.iter
    (fun (x, y, w, h) ->
      Alcotest.(check bool) "inside bbox" true
        (x >= -1e-9 && y >= -1e-9
        && x +. w <= layout.Floorplan.width_um +. 1e-6
        && y +. h <= layout.Floorplan.height_um +. 1e-6))
    rects

let test_floorplan_no_overlap_initial () = check_no_overlap (Floorplan.initial (blocks 10))

let test_floorplan_anneal_improves () =
  let fp = Floorplan.initial (blocks 12) in
  let r = Floorplan.anneal ~sweeps:120 fp in
  Alcotest.(check bool) "area reduced" true
    (r.Floorplan.layout.Floorplan.area_um2 < r.Floorplan.initial_area_um2);
  Alcotest.(check bool) "result valid" true (Floorplan.is_valid r.Floorplan.plan);
  check_no_overlap r.Floorplan.plan;
  Alcotest.(check bool) "dead space bounded" true
    (Floorplan.dead_space_frac r.Floorplan.plan < 0.35)

let test_floorplan_single_block () =
  let fp = Floorplan.initial (blocks 1) in
  Alcotest.(check bool) "valid" true (Floorplan.is_valid fp);
  let layout = Floorplan.evaluate fp in
  check_close "area = block" 1e-6 (Floorplan.blocks_area_um2 fp) layout.Floorplan.area_um2

(* --- wire estimation --- *)

let test_wire_estimate_annotates () =
  let nl = mapped_circuit () in
  ignore (Placer.place ~options:{ Placer.default_options with Placer.sweeps = 10 } nl);
  Gap_place.Wire_estimate.annotate nl;
  let total_cap = ref 0. in
  for net = 0 to Netlist.num_nets nl - 1 do
    total_cap := !total_cap +. Netlist.wire_cap_ff nl net
  done;
  Alcotest.(check bool) "wire caps set" true (!total_cap > 0.);
  Gap_place.Wire_estimate.clear nl;
  let after = ref 0. in
  for net = 0 to Netlist.num_nets nl - 1 do
    after := !after +. Netlist.wire_cap_ff nl net
  done;
  check_close "cleared" 1e-9 0. !after

let test_wire_estimate_slows_timing () =
  let nl = mapped_circuit () in
  let before = (Gap_sta.Sta.analyze nl).Gap_sta.Sta.min_period_ps in
  ignore (Placer.place_random nl);
  Gap_place.Wire_estimate.annotate nl;
  let after = (Gap_sta.Sta.analyze nl).Gap_sta.Sta.min_period_ps in
  Alcotest.(check bool) "wires slow the design" true (after > before)

(* --- router --- *)

module Router = Gap_place.Router

let placed_circuit () =
  let nl = mapped_circuit () in
  ignore (Placer.place ~options:{ Placer.default_options with Placer.sweeps = 15 } nl);
  nl

let test_router_routes_everything () =
  let nl = placed_circuit () in
  let r = Router.route nl in
  (* every multi-pin net with distinct cells gets a non-zero length unless
     its pins share a grid cell *)
  Alcotest.(check bool) "total length positive" true (r.Router.total_len_um > 0.);
  Alcotest.(check bool) "grid sized" true (r.Router.grid_side > 2)

let test_router_at_least_hpwl_two_pin () =
  (* a straight two-pin connection routes at Manhattan distance: build one *)
  let lib = Lazy.force lib in
  let nl = Netlist.create ~lib "wire2" in
  let a = Netlist.add_input nl "a" in
  let inv_cell = Option.get (Gap_liberty.Library.find lib ~base:"INV" ~drive:1.) in
  let u0 = Netlist.add_cell nl inv_cell [| a |] in
  let u1 = Netlist.add_cell nl inv_cell [| Netlist.out_net nl u0 |] in
  ignore (Netlist.set_output nl "y" (Netlist.out_net nl u1));
  Netlist.place nl u0 ~x_um:0. ~y_um:0.;
  Netlist.place nl u1 ~x_um:50. ~y_um:30.;
  let r = Router.route nl in
  let net = Netlist.out_net nl u0 in
  let hpwl = Hpwl.net_length_um nl net in
  Alcotest.(check bool) "routed >= ~hpwl" true
    (r.Router.routed_len_um.(net) >= 0.8 *. hpwl)

let test_router_deterministic () =
  let run () =
    let nl = placed_circuit () in
    (Router.route nl).Router.total_len_um
  in
  check_close "deterministic" 1e-9 (run ()) (run ())

let test_router_capacity_pressure () =
  let nl = placed_circuit () in
  let tight = Router.route ~capacity:1 nl in
  let loose = Router.route ~capacity:64 nl in
  Alcotest.(check bool) "loose grid has less overflow" true
    (loose.Router.overflowed_cells <= tight.Router.overflowed_cells);
  Alcotest.(check bool) "detour at least 1" true (Router.detour_factor nl loose >= 0.99)

let test_router_annotate_slows_timing () =
  let nl = placed_circuit () in
  Gap_netlist.Netlist.clear_parasitics nl;
  let before = (Gap_sta.Sta.analyze nl).Gap_sta.Sta.min_period_ps in
  let r = Router.route nl in
  Router.annotate nl r;
  let after = (Gap_sta.Sta.analyze nl).Gap_sta.Sta.min_period_ps in
  Alcotest.(check bool) "routed wires slow the design" true (after > before)

let test_router_rejects_unplaced () =
  let nl = mapped_circuit () in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Router.route nl);
       false
     with Invalid_argument _ -> true)

(* --- tiler --- *)

module Tiler = Gap_place.Tiler

let test_tiler_recovers_slices () =
  let nl = Gap_synth.Mapper.map_aig ~lib:(Lazy.force lib) (Gap_datapath.Adders.ripple_adder 8) in
  let stats = Tiler.place nl in
  Alcotest.(check int) "8 slices" 8 stats.Tiler.rows;
  Alcotest.(check bool) "columns follow levels" true (stats.Tiler.cols > 4);
  for i = 0 to Netlist.num_instances nl - 1 do
    Alcotest.(check bool) "placed" true (Netlist.location nl i <> None)
  done

let test_tiler_slice_assignment () =
  let nl = Gap_synth.Mapper.map_aig ~lib:(Lazy.force lib) (Gap_datapath.Adders.ripple_adder 4) in
  let slice = Tiler.slice_of_instances nl in
  (* s0's driver must be in slice 0 *)
  (match Netlist.driver_of nl (Netlist.output_net nl 0) with
  | Netlist.From_cell i -> Alcotest.(check int) "s0 driver slice" 0 slice.(i)
  | _ -> Alcotest.fail "s0 undriven");
  Array.iteri
    (fun i s ->
      if s >= 0 then
        Alcotest.(check bool) (Printf.sprintf "slice %d of u%d sane" s i) true (s < 5))
    slice

let test_tiler_beats_random_timing () =
  let build () =
    Gap_synth.Mapper.map_aig ~lib:(Lazy.force lib) (Gap_datapath.Adders.ripple_adder 12)
  in
  let tiled = build () in
  ignore (Tiler.place tiled);
  Gap_place.Wire_estimate.annotate tiled;
  let t = (Gap_sta.Sta.analyze tiled).Gap_sta.Sta.min_period_ps in
  let rand = build () in
  ignore (Placer.place_random rand);
  Gap_place.Wire_estimate.annotate rand;
  let r = (Gap_sta.Sta.analyze rand).Gap_sta.Sta.min_period_ps in
  Alcotest.(check bool) "tiling beats scatter" true (t < r)

let floorplan_random_property =
  QCheck.Test.make ~name:"floorplan anneal: valid, overlap-free, not worse" ~count:10
    QCheck.(pair (int_range 2 9) (int_range 0 1000))
    (fun (n, seed) ->
      let rng = Gap_util.Rng.create ~seed:(Int64.of_int seed) () in
      let bs =
        Array.init n (fun i ->
            {
              Floorplan.block_name = Printf.sprintf "b%d" i;
              w_um = 50. +. Gap_util.Rng.float rng 500.;
              h_um = 50. +. Gap_util.Rng.float rng 500.;
            })
      in
      let fp0 = Floorplan.initial bs in
      let r = Floorplan.anneal ~sweeps:60 fp0 in
      let layout = Floorplan.evaluate r.Floorplan.plan in
      let rects =
        Array.mapi
          (fun i (x, y) -> (x, y, bs.(i).Floorplan.w_um, bs.(i).Floorplan.h_um))
          layout.Floorplan.positions
      in
      let overlap_free = ref true in
      Array.iteri
        (fun i r1 ->
          Array.iteri (fun j r2 -> if i < j && rects_overlap r1 r2 then overlap_free := false) rects)
        rects;
      Floorplan.is_valid r.Floorplan.plan
      && !overlap_free
      && layout.Floorplan.area_um2 <= r.Floorplan.initial_area_um2 +. 1e-6
      && layout.Floorplan.area_um2 >= Floorplan.blocks_area_um2 r.Floorplan.plan -. 1e-6)

let suite =
  [
    ("hpwl of points", `Quick, test_hpwl_points);
    ("hpwl of netlist", `Quick, test_hpwl_netlist);
    ("hpwl cache matches from-scratch", `Quick, test_hpwl_cache_matches_scratch);
    ("hpwl cache rollback", `Quick, test_hpwl_cache_rollback);
    ("placer improves wirelength", `Quick, test_placer_improves);
    ("placer places everything", `Quick, test_placer_places_everything);
    ("placer deterministic", `Quick, test_placer_deterministic);
    ("placer slot exclusivity", `Quick, test_placer_no_slot_collision);
    ("die side", `Quick, test_die_side);
    ("floorplan initial valid", `Quick, test_floorplan_initial_valid);
    ("floorplan no overlap (initial)", `Quick, test_floorplan_no_overlap_initial);
    ("floorplan anneal improves", `Quick, test_floorplan_anneal_improves);
    ("floorplan single block", `Quick, test_floorplan_single_block);
    ("wire estimate annotates", `Quick, test_wire_estimate_annotates);
    ("wire estimate slows timing", `Quick, test_wire_estimate_slows_timing);
    ("router routes everything", `Quick, test_router_routes_everything);
    ("router two-pin lower bound", `Quick, test_router_at_least_hpwl_two_pin);
    ("router deterministic", `Quick, test_router_deterministic);
    ("router capacity pressure", `Quick, test_router_capacity_pressure);
    ("router annotate slows timing", `Quick, test_router_annotate_slows_timing);
    ("router rejects unplaced", `Quick, test_router_rejects_unplaced);
    ("tiler recovers slices", `Quick, test_tiler_recovers_slices);
    ("tiler slice assignment", `Quick, test_tiler_slice_assignment);
    ("tiler beats random timing", `Quick, test_tiler_beats_random_timing);
    QCheck_alcotest.to_alcotest floorplan_random_property;
  ]
