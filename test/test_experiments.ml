(* Integration tests: every reproduced claim must fall in the paper's stated
   range. Heavy experiments (synthesis sweeps) are marked `Slow but run by
   default under alcotest. *)

module Exp = Gap_experiments.Exp
module Registry = Gap_experiments.Registry

let assert_all_pass (r : Exp.result) =
  List.iter
    (fun (row : Exp.row) ->
      match row.Exp.verdict with
      | Exp.Pass | Exp.Info -> ()
      | Exp.Near why -> Alcotest.failf "%s: %s — %s" r.Exp.id row.Exp.label why)
    r.Exp.rows

let experiment_case (id, title, run) =
  let speed =
    (* the synthesis-heavy ones *)
    if List.mem id [ "E2"; "E3"; "E7"; "E8"; "E10"; "X1"; "X3"; "X4"; "X5"; "X7"; "X8" ] then `Slow else `Quick
  in
  ( Printf.sprintf "%s: %s all rows in range" id title,
    speed,
    fun () ->
      let r = run () in
      Alcotest.(check bool) "has rows" true (r.Exp.rows <> []);
      assert_all_pass r )

let test_registry_complete () =
  Alcotest.(check int) "eleven experiments" 11 (List.length Registry.all);
  Alcotest.(check int) "eight extensions" 8 (List.length Registry.extensions);
  List.iteri
    (fun i (id, _, _) ->
      Alcotest.(check string) "ids in order" (Printf.sprintf "E%d" (i + 1)) id)
    Registry.all

let test_find () =
  Alcotest.(check bool) "finds e3 case-insensitively" true (Registry.find "e3" <> None);
  Alcotest.(check bool) "finds extensions" true (Registry.find "x2" <> None);
  Alcotest.(check bool) "unknown id" true (Registry.find "E42" = None)

let test_render_contains_verdicts () =
  let r = Gap_experiments.E1_processors.run () in
  let s = Exp.render r in
  let contains sub =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has header" true (contains "E1");
  Alcotest.(check bool) "has verdict column" true (contains "verdict")

let test_passes_counter () =
  let r = Gap_experiments.E1_processors.run () in
  let p, c = Exp.passes r in
  Alcotest.(check bool) "checkable rows exist" true (c > 0);
  Alcotest.(check bool) "passes bounded" true (p <= c)

let test_csv_export () =
  let r = Gap_experiments.E1_processors.run () in
  let csv = Exp.to_csv r in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "one line per row" (List.length r.Exp.rows) (List.length lines);
  List.iter
    (fun line ->
      let commas = String.fold_left (fun acc c -> if c = ',' then acc + 1 else acc) 0 line in
      Alcotest.(check bool) "five fields" true (commas >= 4))
    lines

let test_check_helper () =
  Alcotest.(check bool) "inside" true (Exp.check 1.5 ~lo:1. ~hi:2. = Exp.Pass);
  Alcotest.(check bool) "outside" true
    (match Exp.check 5. ~lo:1. ~hi:2. with Exp.Near _ -> true | _ -> false)

let test_params_defaults_identical () =
  (* the parameterized entry points at their default records must render
     byte-identically to the historical fixed runs *)
  List.iter
    (fun (name, fixed, param) ->
      Alcotest.(check string) (name ^ " default params byte-identical")
        (Exp.render (fixed ())) (Exp.render (param ())))
    [
      ("E3", Gap_experiments.E3_pipelining.run, fun () -> Registry.run_e3 ());
      ("E4", Gap_experiments.E4_fo4_depth.run, fun () -> Registry.run_e4 ());
      ("E9", Gap_experiments.E9_process_variation.run, fun () -> Registry.run_e9 ());
    ]

let test_params_thread_through () =
  let contains sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  let module E9 = Gap_experiments.E9_process_variation in
  let r = Registry.run_e9 ~params:{ E9.default with E9.dies = 2000 } () in
  Alcotest.(check bool) "E9 note reflects the tuned die count" true
    (List.exists (contains "2000 dies") r.Exp.notes);
  assert_all_pass r;
  let module E4 = Gap_experiments.E4_fo4_depth in
  let r4 = Registry.run_e4 ~params:{ E4.default with E4.cycle_fo4 = 10. } () in
  Alcotest.(check bool) "E4 rows reflect the tuned cycle depth" true
    (contains "10 FO4 cycle" (Exp.render r4))

let suite =
  [
    ("registry complete", `Quick, test_registry_complete);
    ("tunable params default to historical output", `Quick, test_params_defaults_identical);
    ("tunable params thread through", `Quick, test_params_thread_through);
    ("registry find", `Quick, test_find);
    ("render", `Quick, test_render_contains_verdicts);
    ("passes counter", `Quick, test_passes_counter);
    ("check helper", `Quick, test_check_helper);
    ("csv export", `Quick, test_csv_export);
  ]
  @ List.map experiment_case Registry.all
  @ List.map experiment_case Registry.extensions
