(* Tests for Gap_variation: the model, Monte Carlo runs, binning, maturity. *)

module V = Gap_variation.Model
module MC = Gap_variation.Montecarlo
module B = Gap_variation.Binning
module M = Gap_variation.Maturity

let check_close msg tol expected actual = Alcotest.(check (float tol)) msg expected actual

let run ?(fab = V.typical_fab) ?(sigmas = V.mature) ?(dies = 20000) ?(seed = 1L) () =
  MC.simulate ~seed ~model:(V.make ~fab_mean:fab sigmas) ~nominal_mhz:200. ~dies ()

let test_sample_positive_and_centred () =
  let rng = Gap_util.Rng.create () in
  let model = V.make V.mature in
  let stats = Gap_util.Stats.running () in
  for _ = 1 to 50_000 do
    let f = V.sample_speed_factor model rng in
    Alcotest.(check bool) "positive" true (f > 0.);
    Gap_util.Stats.add stats f
  done;
  (* mean sits slightly below fab_mean because intra-die only hurts *)
  Alcotest.(check bool) "mean in (0.93, 1.0)" true
    (Gap_util.Stats.mean stats > 0.93 && Gap_util.Stats.mean stats < 1.0)

let test_total_sigma () =
  let s = V.total_sigma V.mature in
  check_close "rss" 1e-9 (sqrt ((0.035 ** 2.) +. (0.025 ** 2.) +. (0.04 ** 2.))) s;
  Alcotest.(check bool) "new process wider" true (V.total_sigma V.new_process > s)

let test_mc_deterministic () =
  let a = run ~seed:5L () and b = run ~seed:5L () in
  Alcotest.(check (float 1e-9)) "same seed same run" (MC.mean a) (MC.mean b);
  let c = run ~seed:6L () in
  Alcotest.(check bool) "different seed differs" true (MC.mean a <> MC.mean c)

let test_mc_domains_identical () =
  (* the shard layout depends only on [dies], so the sample array must be
     byte-identical for any worker count — including a dies count that does
     not divide evenly into shards *)
  let model = V.make V.mature in
  let base = MC.simulate ~seed:7L ~model ~nominal_mhz:250. ~dies:4500 () in
  List.iter
    (fun d ->
      let r = MC.simulate ~seed:7L ~domains:d ~model ~nominal_mhz:250. ~dies:4500 () in
      Alcotest.(check bool)
        (Printf.sprintf "domains=%d identical" d)
        true
        (r.MC.fmax_mhz = base.MC.fmax_mhz))
    [ 1; 2; 4 ]

let mc_domains_identical_property =
  (* same contract as the pinned test above, but over random seeds and dies
     counts — shard-boundary stragglers, single-shard runs, and runs smaller
     than the worker count included *)
  QCheck.Test.make ~name:"mc samples byte-identical across domains" ~count:12
    QCheck.(pair (int_bound 1000) (int_range 1 5000))
    (fun (seed, dies) ->
      let model = V.make V.mature in
      let seed = Int64.of_int seed in
      let base = MC.simulate ~seed ~model ~nominal_mhz:250. ~dies () in
      List.for_all
        (fun d ->
          let r = MC.simulate ~seed ~domains:d ~model ~nominal_mhz:250. ~dies () in
          r.MC.fmax_mhz = base.MC.fmax_mhz
          && MC.percentile r 50. = MC.percentile base 50.)
        [ 2; 4 ])

let test_mc_percentiles_ordered () =
  let r = run () in
  let p1 = MC.percentile r 1. and p50 = MC.percentile r 50. and p99 = MC.percentile r 99. in
  Alcotest.(check bool) "ordered" true (p1 < p50 && p50 < p99);
  Alcotest.(check bool) "spread positive" true (MC.spread r > 0.1)

let test_fraction_above () =
  let r = run () in
  check_close "all dies above 0" 1e-9 1.0 (MC.fraction_above r 0.);
  check_close "none above 10x nominal" 1e-9 0.0 (MC.fraction_above r 2000.);
  let median = MC.percentile r 50. in
  check_close "half above median" 0.02 0.5 (MC.fraction_above r median)

let test_binning_counts () =
  let r = run ~dies:10000 () in
  let bins = B.bin r ~edges_mhz:[| 150.; 180.; 200.; 220. |] in
  let total = Array.fold_left ( + ) 0 bins.B.counts in
  Alcotest.(check int) "all dies binned" 10000 total;
  Alcotest.(check int) "bins = edges + 1" 5 (Array.length bins.B.counts)

let test_binning_monotone_yield () =
  let r = run () in
  let y150 = B.yield_at r ~mhz:150. and y200 = B.yield_at r ~mhz:200. and y250 = B.yield_at r ~mhz:250. in
  Alcotest.(check bool) "yield decreases with speed" true (y150 >= y200 && y200 >= y250)

let test_signoff_below_typical () =
  let model = V.make ~fab_mean:V.slow_fab V.mature in
  Alcotest.(check bool) "signoff below fab mean" true (V.signoff_speed model < V.slow_fab);
  Alcotest.(check bool) "signoff positive" true (V.signoff_speed model > 0.3)

let test_paper_ratio_bands () =
  let typical = run () in
  let slow_model = V.make ~fab_mean:V.slow_fab V.mature in
  let tvw = MC.percentile typical 50. /. (200. *. V.signoff_speed slow_model) in
  Alcotest.(check bool) "typical vs worst in 1.5..1.8" true (tvw > 1.5 && tvw < 1.8);
  let new_proc = run ~sigmas:V.new_process () in
  let top = B.top_bin_vs_typical new_proc in
  Alcotest.(check bool) "top bin in 1.15..1.45" true (top > 1.15 && top < 1.45);
  let gain = B.speed_test_gain typical in
  Alcotest.(check bool) "speed test gain in 1.2..1.5" true (gain > 1.2 && gain < 1.5);
  Alcotest.(check bool) "fab span 20-25%" true
    (B.fab_to_fab_span >= 0.20 && B.fab_to_fab_span <= 0.25)

let test_custom_vs_asic () =
  let custom = run ~fab:V.best_fab ~seed:2L () in
  let asic = run ~fab:V.slow_fab ~seed:3L () in
  let r = B.custom_best_vs_asic_worst ~custom ~asic in
  Alcotest.(check bool) "around 1.9x" true (r > 1.6 && r < 2.3)

let test_maturity_shrink () =
  check_close "5% shrink ~ 18-20%" 0.03 0.19 (M.shrink_speed_gain ~linear_shrink:0.05);
  check_close "no shrink no gain" 1e-9 0. (M.shrink_speed_gain ~linear_shrink:0.)

let test_maturity_spread () =
  Alcotest.(check bool) "initial spread 30-40%" true
    (M.initial_spread > 0.28 && M.initial_spread < 0.42)

let test_library_update_gain () =
  check_close "saturates at 20%" 1e-3 0.2 (M.library_update_gain ~months:1000.);
  Alcotest.(check bool) "monotone" true
    (M.library_update_gain ~months:3. < M.library_update_gain ~months:12.);
  check_close "zero at start" 1e-9 0. (M.library_update_gain ~months:0.)

(* --- economics --- *)

module E = Gap_variation.Economics

let mc_run = lazy (run ~dies:30000 ())

let test_economics_price_curve () =
  let p = E.default_pricing in
  let base = E.price_at p ~nominal_mhz:200. ~mhz:200. in
  check_close "nominal price" 1e-9 p.E.base_price base;
  Alcotest.(check bool) "faster sells higher" true
    (E.price_at p ~nominal_mhz:200. ~mhz:240. > base);
  Alcotest.(check bool) "floor at 20%" true
    (E.price_at p ~nominal_mhz:200. ~mhz:10. >= 0.2 *. p.E.base_price -. 1e-9)

let test_economics_single_rating_monotonic_yield () =
  let r = Lazy.force mc_run in
  let low = E.single_rating E.default_pricing r ~rating_mhz:150. in
  let high = E.single_rating E.default_pricing r ~rating_mhz:260. in
  Alcotest.(check bool) "higher rating, lower yield" true
    (high.E.sold_fraction < low.E.sold_fraction);
  Alcotest.(check bool) "low rating sells nearly all" true (low.E.sold_fraction > 0.95)

let test_economics_top_bin_unprofitable () =
  let r = Lazy.force mc_run in
  let top = MC.percentile r 99. in
  let res = E.single_rating E.default_pricing r ~rating_mhz:top in
  Alcotest.(check bool) "1% yield loses money" true (res.E.revenue_per_die < 0.)

let test_economics_binning_beats_single () =
  let r = Lazy.force mc_run in
  let best =
    E.best_single_rating E.default_pricing r
      ~candidates:(Array.init 25 (fun i -> 150. +. (5. *. float_of_int i)))
  in
  (* edges low enough that almost every die lands in some bin *)
  let binned = E.binned E.default_pricing r ~edges_mhz:[| 165.; 190.; 210. |] in
  Alcotest.(check bool) "binning wins" true
    (binned.E.revenue_per_die > best.E.revenue_per_die);
  Alcotest.(check bool) "best single rating is conservative" true
    (MC.fraction_above r best.E.rating_mhz > 0.6)

let test_die_yield () =
  check_close "zero area perfect yield" 1e-9 1.0 (E.die_yield ~area_mm2:0. ~defects_per_cm2:0.5);
  let small = E.die_yield ~area_mm2:10. ~defects_per_cm2:0.5 in
  let big = E.die_yield ~area_mm2:225. ~defects_per_cm2:0.5 in
  Alcotest.(check bool) "bigger die yields worse" true (big < small);
  Alcotest.(check bool) "alpha-sized die at 0.5 d/cm2 yields 30-70%" true
    (big > 0.3 && big < 0.7)

(* --- statistical STA --- *)

module Ssta = Gap_variation.Ssta

let ssta_netlist = lazy (
  let lib = Gap_liberty.Libgen.(make Gap_tech.Tech.asic_025um rich) in
  Gap_synth.Mapper.map_aig ~lib (Gap_datapath.Adders.cla_adder 8))

let test_ssta_deterministic () =
  let nl = Lazy.force ssta_netlist in
  let a = Ssta.simulate ~seed:9L ~samples:50 ~sigma_cell:0.05 nl in
  let b = Ssta.simulate ~seed:9L ~samples:50 ~sigma_cell:0.05 nl in
  check_close "same seed same mean" 1e-9 (Ssta.mean_period_ps a) (Ssta.mean_period_ps b)

let test_ssta_restores_netlist () =
  let nl = Lazy.force ssta_netlist in
  let before = (Gap_sta.Sta.analyze nl).Gap_sta.Sta.min_period_ps in
  ignore (Ssta.simulate ~samples:30 ~sigma_cell:0.08 nl);
  let after = (Gap_sta.Sta.analyze nl).Gap_sta.Sta.min_period_ps in
  check_close "netlist unchanged" 1e-9 before after

let test_ssta_mean_exceeds_nominal () =
  let nl = Lazy.force ssta_netlist in
  let r = Ssta.simulate ~samples:150 ~sigma_cell:0.06 nl in
  Alcotest.(check bool) "max-of-paths shifts the mean up" true (Ssta.mean_shift r >= -0.005);
  Alcotest.(check bool) "shift is moderate" true (Ssta.mean_shift r < 0.15)

let test_ssta_averaging_shrinks_sigma () =
  let nl = Lazy.force ssta_netlist in
  let r = Ssta.simulate ~samples:150 ~sigma_cell:0.08 nl in
  Alcotest.(check bool) "chip sigma below cell sigma" true
    (Ssta.relative_sigma r < 0.08);
  Alcotest.(check bool) "but not zero" true (Ssta.relative_sigma r > 0.005)

let test_ssta_zero_sigma_is_nominal () =
  let nl = Lazy.force ssta_netlist in
  let r = Ssta.simulate ~samples:10 ~sigma_cell:0.0 nl in
  check_close "no variation, no spread" 1e-9 0. (Ssta.sigma_period_ps r);
  check_close "mean = nominal" 1e-6 r.Ssta.nominal_ps (Ssta.mean_period_ps r)

let suite =
  [
    ("samples positive and centred", `Quick, test_sample_positive_and_centred);
    ("total sigma", `Quick, test_total_sigma);
    ("MC deterministic by seed", `Quick, test_mc_deterministic);
    ("MC identical across domains", `Quick, test_mc_domains_identical);
    QCheck_alcotest.to_alcotest mc_domains_identical_property;
    ("MC percentiles ordered", `Quick, test_mc_percentiles_ordered);
    ("fraction above", `Quick, test_fraction_above);
    ("binning counts", `Quick, test_binning_counts);
    ("yield monotone", `Quick, test_binning_monotone_yield);
    ("signoff below typical", `Quick, test_signoff_below_typical);
    ("paper ratio bands", `Quick, test_paper_ratio_bands);
    ("custom vs asic", `Quick, test_custom_vs_asic);
    ("maturity shrink", `Quick, test_maturity_shrink);
    ("maturity spread", `Quick, test_maturity_spread);
    ("library update gain", `Quick, test_library_update_gain);
    ("economics: price curve", `Quick, test_economics_price_curve);
    ("economics: yield monotone in rating", `Quick, test_economics_single_rating_monotonic_yield);
    ("economics: top bin unprofitable", `Quick, test_economics_top_bin_unprofitable);
    ("economics: binning beats single rating", `Quick, test_economics_binning_beats_single);
    ("economics: die yield", `Quick, test_die_yield);
    ("ssta: deterministic", `Quick, test_ssta_deterministic);
    ("ssta: restores netlist", `Quick, test_ssta_restores_netlist);
    ("ssta: mean exceeds nominal", `Quick, test_ssta_mean_exceeds_nominal);
    ("ssta: averaging shrinks sigma", `Quick, test_ssta_averaging_shrinks_sigma);
    ("ssta: zero sigma nominal", `Quick, test_ssta_zero_sigma_is_nominal);
  ]
