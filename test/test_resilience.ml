(* Gap_resilience: typed stage errors, deterministic fault injection,
   supervised retries/deadlines, atomic artifact writes, and
   checkpoint/resume. The two properties that matter: every injected fault
   at every registered site either recovers or surfaces a typed diagnostic
   (never an uncaught exception), and a killed campaign resumed from its
   checkpoint produces byte-identical final output. *)

module Stage_error = Gap_resilience.Stage_error
module Fault = Gap_resilience.Fault
module Supervisor = Gap_resilience.Supervisor
module Checkpoint = Gap_resilience.Checkpoint
module Atomic_io = Gap_util.Atomic_io
module Obs = Gap_obs.Obs
module Json = Gap_obs.Json
module Check = Gap_netlist.Check
module Campaign = Gap_experiments.Campaign

let with_temp_file f =
  let path = Filename.temp_file "gap_resilience_test" ".json" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path; path ^ ".tmp" ])
    (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* --- Stage_error: taxonomy and classification --- *)

let test_classify () =
  (match Stage_error.of_exn ~stage:"s" (Failure "boom") with
  | Stage_error.Unclassified { stage; exn_text } ->
      Alcotest.(check string) "stage" "s" stage;
      Alcotest.(check bool) "carries text" true
        (String.length exn_text > 0)
  | e -> Alcotest.failf "expected Unclassified, got %s" (Stage_error.to_string e));
  (* Stage_failure passes its payload through unchanged *)
  let inj = Stage_error.Injected { site = "x"; kind = Stage_error.Transient } in
  Alcotest.(check bool) "passthrough" true
    (Stage_error.of_exn ~stage:"s" (Stage_error.Stage_failure inj) = inj);
  (* gap_netlist registers classifiers for its own exceptions *)
  (match
     Stage_error.of_exn ~stage:"elab" (Gap_netlist.Netlist.Combinational_cycle [ 3; 7 ])
   with
  | Stage_error.Netlist_defect { rule; _ } ->
      Alcotest.(check string) "cycle rule" "comb-cycle" rule
  | e -> Alcotest.failf "expected Netlist_defect, got %s" (Stage_error.to_string e))

let test_retryable () =
  let open Stage_error in
  Alcotest.(check bool) "transient injection retryable" true
    (retryable (Injected { site = "s"; kind = Transient }));
  Alcotest.(check bool) "worker failure retryable" true
    (retryable (Worker_failed { stage = "mc"; worker = 1; error = "died" }));
  Alcotest.(check bool) "corruption not retryable" false
    (retryable (Injected { site = "s"; kind = Corrupt }));
  Alcotest.(check bool) "deadline not retryable" false
    (retryable
       (Deadline_exceeded { stage = "s"; elapsed_ns = 2L; budget_ns = 1L }));
  Alcotest.(check bool) "defect not retryable" false
    (retryable (Netlist_defect { stage = "s"; rule = "r"; detail = "d" }))

let test_error_json () =
  let e =
    Stage_error.Exhausted_retries
      {
        stage = "synth.map";
        attempts = 3;
        last = Stage_error.Injected { site = "synth.map"; kind = Stage_error.Transient };
      }
  in
  (* the JSON document must round-trip through the parser *)
  match Json.of_string (Json.to_string (Stage_error.to_json e)) with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "error json does not parse: %s" m

(* --- Atomic_io: crash-safe artifact writes --- *)

let test_atomic_write () =
  with_temp_file (fun path ->
      Atomic_io.write_string path "first";
      Alcotest.(check string) "written" "first" (read_file path);
      (* a writer that raises must leave the previous contents untouched
         and no temp file behind *)
      (try
         Atomic_io.write_file path (fun oc ->
             output_string oc "partial garbage";
             failwith "simulated crash mid-write")
       with Failure _ -> ());
      Alcotest.(check string) "old contents survive" "first" (read_file path);
      Alcotest.(check bool) "temp removed" false (Sys.file_exists (path ^ ".tmp")))

let test_streaming_writer () =
  with_temp_file (fun path ->
      Atomic_io.write_string path "old";
      let w = Atomic_io.start path in
      output_string (Atomic_io.channel w) "line 1\n";
      (* nothing committed yet: destination still has the old artifact *)
      Alcotest.(check string) "uncommitted" "old" (read_file path);
      Atomic_io.commit w;
      Atomic_io.commit w (* idempotent *);
      Alcotest.(check string) "committed" "line 1\n" (read_file path);
      let w2 = Atomic_io.start path in
      output_string (Atomic_io.channel w2) "doomed";
      Atomic_io.abort w2;
      Atomic_io.abort w2 (* idempotent *);
      Alcotest.(check string) "abort leaves destination" "line 1\n" (read_file path);
      Alcotest.(check bool) "abort removes temp" false
        (Sys.file_exists (path ^ ".tmp")))

(* --- Fault: off by default, deterministic skip/hits when armed --- *)

let test_fault_off () =
  Alcotest.(check bool) "unarmed" false (Fault.armed ());
  Fault.point "synth.map" (* must be a no-op *);
  Alcotest.(check (float 0.)) "corrupt_float identity" 1.5
    (Fault.corrupt_float "place.parasitic" 1.5)

let test_fault_skip_hits () =
  let injected = ref 0 in
  let result, report =
    Fault.with_plan
      [ Fault.spec ~skip:2 "test.site" Stage_error.Transient ]
      (fun () ->
        for _ = 1 to 5 do
          try Fault.point "test.site"
          with Stage_error.Stage_failure (Stage_error.Injected { site; kind }) ->
            Alcotest.(check string) "site" "test.site" site;
            Alcotest.(check bool) "kind" true (kind = Stage_error.Transient);
            incr injected
        done;
        "done")
  in
  Alcotest.(check bool) "value returned" true (result = Ok "done");
  Alcotest.(check int) "exactly one injection, on the 3rd hit" 1 !injected;
  Alcotest.(check (option int)) "hits recorded" (Some 5)
    (List.assoc_opt "test.site" report.Fault.sites_hit);
  Alcotest.(check (option int)) "injections recorded" (Some 1)
    (List.assoc_opt "test.site" report.Fault.injected);
  (* the plan is disarmed on exit *)
  Alcotest.(check bool) "disarmed after" false (Fault.armed ())

(* every (calls, skip, hits) plan injects exactly
   min hits (max 0 (calls - skip)) faults and records every hit *)
let fault_bookkeeping_prop =
  QCheck.Test.make ~name:"fault injection bookkeeping" ~count:200
    QCheck.(triple (int_bound 20) (int_bound 10) (int_range 1 5))
    (fun (calls, skip, hits) ->
      let injected = ref 0 in
      let (_ : (unit, exn) result), report =
        Fault.with_plan
          [ Fault.spec ~skip ~hits "prop.site" Stage_error.Transient ]
          (fun () ->
            for _ = 1 to calls do
              try Fault.point "prop.site"
              with Stage_error.Stage_failure _ -> incr injected
            done)
      in
      let expect = min hits (max 0 (calls - skip)) in
      let hit_count =
        Option.value ~default:0 (List.assoc_opt "prop.site" report.Fault.sites_hit)
      in
      let inj_count =
        Option.value ~default:0 (List.assoc_opt "prop.site" report.Fault.injected)
      in
      !injected = expect && inj_count = expect && hit_count = calls)

(* --- Supervisor: retry, exhaustion, typed outcomes, deadlines --- *)

let test_retry_recovers () =
  let result, _ =
    Fault.with_plan
      [ Fault.spec "flaky" Stage_error.Transient ]
      (fun () ->
        Supervisor.run_stage ~stage:"flaky" (fun () ->
            Fault.point "flaky";
            42))
  in
  match result with
  | Ok o ->
      Alcotest.(check bool) "succeeded" true (o.Supervisor.result = Ok 42);
      Alcotest.(check int) "one failed attempt" 1 (List.length o.Supervisor.attempts);
      Alcotest.(check bool) "recovered" true (Supervisor.recovered o);
      let a = List.hd o.Supervisor.attempts in
      Alcotest.(check bool) "backoff recorded" true (a.Supervisor.backoff_ns > 0L)
  | Error e -> Alcotest.failf "with_plan leaked: %s" (Printexc.to_string e)

let test_retry_exhausts () =
  let result, _ =
    Fault.with_plan
      [ Fault.spec ~hits:10 "hopeless" Stage_error.Transient ]
      (fun () ->
        Supervisor.run_stage ~stage:"hopeless" (fun () ->
            Fault.point "hopeless";
            ()))
  in
  match result with
  | Ok o -> (
      match o.Supervisor.result with
      | Error (Stage_error.Exhausted_retries { attempts; last; _ }) ->
          (* default policy: 1 initial try + 2 retries *)
          Alcotest.(check int) "attempts" 3 attempts;
          Alcotest.(check bool) "last is the injection" true
            (last = Stage_error.Injected { site = "hopeless"; kind = Stage_error.Transient })
      | Error e -> Alcotest.failf "wrong error: %s" (Stage_error.to_string e)
      | Ok () -> Alcotest.fail "stage cannot succeed with 10 armed hits")
  | Error e -> Alcotest.failf "run_stage leaked: %s" (Printexc.to_string e)

let test_run_stage_never_raises () =
  let o = Supervisor.run_stage ~stage:"s" (fun () -> failwith "untyped bug") in
  (match o.Supervisor.result with
  | Error (Stage_error.Unclassified _) -> ()
  | _ -> Alcotest.fail "expected Unclassified");
  let o2 = Supervisor.run_stage ~stage:"s" (fun () -> 1 / 0) in
  match o2.Supervisor.result with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "division cannot succeed"

let test_guard_finite () =
  (* unsupervised: identity even for NaN, so the plain flow never changes *)
  Alcotest.(check bool) "unsupervised NaN passes" true
    (Float.is_nan (Supervisor.guard_finite ~stage:"s" ~what:"w" Float.nan));
  let o =
    Supervisor.run_stage ~stage:"s" (fun () ->
        Supervisor.guard_finite ~stage:"s" ~what:"slack" Float.nan)
  in
  match o.Supervisor.result with
  | Error (Stage_error.Numeric_fault { what; _ }) ->
      Alcotest.(check string) "what" "slack" what
  | _ -> Alcotest.fail "expected Numeric_fault under supervision"

let test_deadline () =
  (* no deadline armed: poll is a no-op *)
  Supervisor.poll_deadline ~stage:"s";
  let o =
    Supervisor.run_stage ~stage:"s" (fun () ->
        Supervisor.with_deadline_ns 0L (fun () ->
            Supervisor.poll_deadline ~stage:"s"))
  in
  match o.Supervisor.result with
  | Error (Stage_error.Deadline_exceeded { budget_ns; _ }) ->
      Alcotest.(check bool) "budget" true (budget_ns = 0L)
  | _ -> Alcotest.fail "expected Deadline_exceeded"

(* --- Monte Carlo: worker death degrades to byte-identical samples --- *)

let mc_model () = Gap_variation.Model.make Gap_variation.Model.mature

let test_mc_worker_death () =
  let simulate () =
    Gap_variation.Montecarlo.simulate ~seed:11L ~domains:4 ~model:(mc_model ())
      ~nominal_mhz:250. ~dies:4096 ()
  in
  let clean = simulate () in
  let sink = Obs.recorder () in
  let result, report =
    Obs.with_sink sink (fun () ->
        Fault.with_plan
          [ Fault.spec "mc.worker" Stage_error.Worker_kill ]
          simulate)
  in
  match result with
  | Ok faulted ->
      Alcotest.(check bool) "fault actually fired" true
        (List.assoc_opt "mc.worker" report.Fault.injected = Some 1);
      Alcotest.(check int) "degraded to sequential" 1
        (Obs.counter_value sink "mc.degraded_runs");
      Alcotest.(check bool) "samples byte-identical" true
        (clean.Gap_variation.Montecarlo.fmax_mhz
        = faulted.Gap_variation.Montecarlo.fmax_mhz)
  | Error e -> Alcotest.failf "degradation failed: %s" (Printexc.to_string e)

let mc_worker_death_identical_property =
  (* the pinned test above at one shape; here random seeds, dies counts, and
     worker counts. dies > 2 shards so a worker domain always spawns and the
     kill site is reachable; the degraded sequential rerun must reproduce the
     clean run's samples byte for byte *)
  QCheck.Test.make ~name:"mc worker death degrades byte-identically" ~count:8
    QCheck.(triple (int_bound 1000) (int_range 2049 8192) (int_range 2 4))
    (fun (seed, dies, domains) ->
      let seed = Int64.of_int seed in
      let simulate () =
        Gap_variation.Montecarlo.simulate ~seed ~domains ~model:(mc_model ())
          ~nominal_mhz:250. ~dies ()
      in
      let clean =
        Gap_variation.Montecarlo.simulate ~seed ~model:(mc_model ())
          ~nominal_mhz:250. ~dies ()
      in
      let result, report =
        Fault.with_plan [ Fault.spec "mc.worker" Stage_error.Worker_kill ] simulate
      in
      match result with
      | Ok faulted ->
          List.assoc_opt "mc.worker" report.Fault.injected = Some 1
          && clean.Gap_variation.Montecarlo.fmax_mhz
             = faulted.Gap_variation.Montecarlo.fmax_mhz
      | Error _ -> false)

(* --- Placer: mid-anneal fault falls back to best-so-far --- *)

let small_netlist () =
  let lib =
    Gap_liberty.Libgen.make Gap_tech.Tech.asic_025um Gap_liberty.Libgen.rich
  in
  (Gap_synth.Flow.run ~lib ~effort:Gap_synth.Flow.low_effort ~name:"cla16"
     (Gap_datapath.Adders.cla_adder 16))
    .Gap_synth.Flow.netlist

let test_placer_recovery () =
  let nl = small_netlist () in
  let sink = Obs.recorder () in
  let result, report =
    Obs.with_sink sink (fun () ->
        Fault.with_plan
          [ Fault.spec ~skip:5 "place.sweep" Stage_error.Transient ]
          (fun () ->
            Gap_place.Placer.place
              ~options:
                { Gap_place.Placer.default_options with sweeps = 10; seed = 3L }
              nl))
  in
  match result with
  | Ok stats ->
      Alcotest.(check bool) "fault fired mid-anneal" true
        (List.assoc_opt "place.sweep" report.Fault.injected = Some 1);
      Alcotest.(check int) "recovery recorded" 1
        (Obs.counter_value sink "place.anneal_recoveries");
      Alcotest.(check bool) "best-so-far cost is finite and sane" true
        (Float.is_finite stats.Gap_place.Placer.final_hpwl_um
        && stats.Gap_place.Placer.final_hpwl_um > 0.);
      (* the recovered placement must still be a legal placement *)
      let (), reports =
        Check.with_gates (fun () -> Check.gate ~placed:true ~stage:"test" nl)
      in
      List.iter
        (fun (r : Check.gate_report) ->
          List.iter
            (fun (d : Check.diagnostic) ->
              if d.Check.severity = Check.Error then
                Alcotest.failf "placement defect after recovery: %s"
                  (Format.asprintf "%a" Check.pp_diagnostic d))
            r.Check.diagnostics)
        reports
  | Error e -> Alcotest.failf "placer recovery failed: %s" (Printexc.to_string e)

(* --- corrupted parasitics are caught as a typed defect, not silence --- *)

let test_corrupt_parasitic_typed () =
  let nl = small_netlist () in
  ignore
    (Gap_place.Placer.place
       ~options:{ Gap_place.Placer.default_options with sweeps = 5; seed = 3L }
       nl);
  let result, report =
    Fault.with_plan
      [ Fault.spec ~skip:3 "place.parasitic" Stage_error.Corrupt ]
      (fun () ->
        Supervisor.run_stage ~stage:"place.annotate" (fun () ->
            let (), (_ : Check.gate_report list) =
              Check.with_gates ~strict:true (fun () ->
                  Gap_place.Wire_estimate.annotate nl;
                  ignore (Gap_sta.Sta.analyze nl))
            in
            ()))
  in
  match result with
  | Ok o -> (
      Alcotest.(check bool) "corruption injected" true
        (List.assoc_opt "place.parasitic" report.Fault.injected = Some 1);
      match o.Supervisor.result with
      | Error (Stage_error.Netlist_defect { rule; _ }) ->
          Alcotest.(check string) "caught by the parasitic rule" "bad-parasitic" rule
      | Error e -> Alcotest.failf "wrong diagnostic: %s" (Stage_error.to_string e)
      | Ok () -> Alcotest.fail "NaN parasitic must not pass the gates")
  | Error e -> Alcotest.failf "leaked: %s" (Printexc.to_string e)

(* --- Checkpoint: versioned, atomic, resumable --- *)

let test_checkpoint_roundtrip () =
  with_temp_file (fun path ->
      let payload = Json.Obj [ ("k", Json.Str "v"); ("n", Json.Int 3) ] in
      Checkpoint.save ~path ~campaign:"unit-test" payload;
      (match Checkpoint.load ~path with
      | Ok (campaign, p) ->
          Alcotest.(check string) "campaign tag" "unit-test" campaign;
          Alcotest.(check bool) "payload round-trips" true (p = payload)
      | Error m -> Alcotest.failf "load failed: %s" m);
      (* wrong version must be rejected, not misread *)
      Atomic_io.write_string path
        (Json.to_string
           (Json.Obj
              [
                ("version", Json.Int 999);
                ("campaign", Json.Str "unit-test");
                ("payload", Json.Null);
              ]));
      (match Checkpoint.load ~path with
      | Error m ->
          Alcotest.(check bool) "mentions version" true
            (String.length m > 0)
      | Ok _ -> Alcotest.fail "version 999 must not load");
      Atomic_io.write_string path "not json at all {";
      match Checkpoint.load ~path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "garbage must not load")

let test_checkpoint_missing () =
  match Checkpoint.load ~path:"/nonexistent/gap/checkpoint.json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file must not load"

(* --- the property the whole PR exists for: every registered site,
   injected, never silent and never uncaught --- *)

let test_fault_campaign () =
  let results = Campaign.run_faults ~seed:1L () in
  Alcotest.(check bool) "campaign passes" true (Campaign.faults_ok results);
  (* all catalog sites are exercised *)
  List.iter
    (fun (site, kinds, _) ->
      List.iter
        (fun kind ->
          match
            List.find_opt
              (fun (r : Campaign.site_result) -> r.site = site && r.kind = kind)
              results
          with
          | None -> Alcotest.failf "site %s not in campaign" site
          | Some r ->
              Alcotest.(check bool)
                (site ^ " injected at least once")
                true (r.Campaign.injected > 0);
              Alcotest.(check bool)
                (site ^ " never silent or uncaught")
                true
                (match r.Campaign.outcome with
                | Campaign.Recovered | Campaign.Degraded
                | Campaign.Failed_typed _ ->
                    true
                | Campaign.Silent | Campaign.Uncaught _
                | Campaign.Not_exercised ->
                    false))
        kinds)
    Fault.catalog;
  (* the report document is valid JSON *)
  match Json.of_string (Json.to_string (Campaign.faults_json ~seed:1L results)) with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "faults json malformed: %s" m

(* --- kill + resume is byte-identical --- *)

let test_kill_resume_identity () =
  let ids = [ "E2"; "E4" ] in
  let baseline = Campaign.output (Campaign.run_experiments ~ids ()) in
  with_temp_file (fun ckpt ->
      (* "kill" after the first experiment: the checkpoint holds E2 only *)
      let partial =
        Campaign.run_experiments ~checkpoint:ckpt ~stop_after:1 ~ids ()
      in
      Alcotest.(check int) "stopped early" 1 (List.length partial);
      let resumed = Campaign.resume_experiments ~checkpoint:ckpt () in
      Alcotest.(check string) "resumed output byte-identical" baseline
        (Campaign.output resumed);
      Alcotest.(check bool) "resumed campaign passes" true
        (Campaign.all_passed resumed))

(* --- supervision itself must not perturb results --- *)

let test_supervised_render_identity () =
  let run = Option.get (Gap_experiments.Registry.find "E4") in
  let direct = Gap_experiments.Exp.render (run ()) in
  let o = Supervisor.run_stage ~stage:"exp.E4" run in
  match o.Supervisor.result with
  | Ok r ->
      Alcotest.(check string) "render identical under supervision" direct
        (Gap_experiments.Exp.render r)
  | Error e -> Alcotest.failf "E4 failed under supervision: %s" (Stage_error.to_string e)

let suite =
  [
    Alcotest.test_case "stage-error classification" `Quick test_classify;
    Alcotest.test_case "retryable taxonomy" `Quick test_retryable;
    Alcotest.test_case "stage-error json round-trip" `Quick test_error_json;
    Alcotest.test_case "atomic write crash safety" `Quick test_atomic_write;
    Alcotest.test_case "streaming writer commit/abort" `Quick test_streaming_writer;
    Alcotest.test_case "fault sites off by default" `Quick test_fault_off;
    Alcotest.test_case "fault skip/hits semantics" `Quick test_fault_skip_hits;
    QCheck_alcotest.to_alcotest fault_bookkeeping_prop;
    Alcotest.test_case "retry recovers transient fault" `Quick test_retry_recovers;
    Alcotest.test_case "retry budget exhausts typed" `Quick test_retry_exhausts;
    Alcotest.test_case "run_stage never raises" `Quick test_run_stage_never_raises;
    Alcotest.test_case "guard_finite only under supervision" `Quick test_guard_finite;
    Alcotest.test_case "cooperative deadline" `Quick test_deadline;
    Alcotest.test_case "mc worker death degrades identically" `Quick test_mc_worker_death;
    QCheck_alcotest.to_alcotest mc_worker_death_identical_property;
    Alcotest.test_case "placer recovers best-so-far" `Quick test_placer_recovery;
    Alcotest.test_case "corrupt parasitic is typed" `Quick test_corrupt_parasitic_typed;
    Alcotest.test_case "checkpoint round-trip + version gate" `Quick test_checkpoint_roundtrip;
    Alcotest.test_case "checkpoint missing file" `Quick test_checkpoint_missing;
    Alcotest.test_case "fault campaign: no silent, no uncaught" `Quick test_fault_campaign;
    Alcotest.test_case "kill + resume byte-identical" `Quick test_kill_resume_identity;
    Alcotest.test_case "supervision is render-neutral" `Quick test_supervised_render_identity;
  ]
