(* Tests for Gap_netlist.Verilog: write / read round-trips. *)

module Netlist = Gap_netlist.Netlist
module Verilog = Gap_netlist.Verilog
module Sim = Gap_netlist.Sim
module Libgen = Gap_liberty.Libgen
module Library = Gap_liberty.Library

let lib = lazy (Libgen.make Gap_tech.Tech.asic_025um Libgen.rich)

let roundtrip_equivalent ?(vectors = 200) nl =
  let src = Verilog.write nl in
  let nl2 = Verilog.read ~lib:(Lazy.force lib) src in
  Alcotest.(check int) "same inputs" (Netlist.num_inputs nl) (Netlist.num_inputs nl2);
  Alcotest.(check int) "same outputs" (Netlist.num_outputs nl) (Netlist.num_outputs nl2);
  Alcotest.(check int) "same instance count" (Netlist.num_instances nl)
    (Netlist.num_instances nl2);
  let rng = Gap_util.Rng.create ~seed:77L () in
  let n = Netlist.num_inputs nl in
  for _ = 1 to vectors do
    let ins = Array.init n (fun _ -> Gap_util.Rng.bool rng) in
    let o1 = Sim.eval nl (Sim.initial nl) ins in
    let o2 = Sim.eval nl2 (Sim.initial nl2) ins in
    Alcotest.(check bool) "same function" true (o1 = o2)
  done;
  nl2

let test_roundtrip_adder () =
  let g = Gap_datapath.Adders.cla_adder 8 in
  let nl = Gap_synth.Mapper.map_aig ~lib:(Lazy.force lib) ~name:"cla8" g in
  ignore (roundtrip_equivalent nl)

let test_roundtrip_preserves_timing () =
  let g = Gap_datapath.Adders.kogge_stone_adder 8 in
  let nl = Gap_synth.Mapper.map_aig ~lib:(Lazy.force lib) ~name:"ks8" g in
  let nl2 = roundtrip_equivalent nl in
  let p1 = (Gap_sta.Sta.analyze nl).Gap_sta.Sta.min_period_ps in
  let p2 = (Gap_sta.Sta.analyze nl2).Gap_sta.Sta.min_period_ps in
  Alcotest.(check (float 1e-6)) "same min period" p1 p2

let test_roundtrip_sequential () =
  (* pipelined netlist: flops, CK port, multi-cycle behaviour *)
  let g = Gap_datapath.Adders.ripple_adder 4 in
  let effort = { Gap_synth.Flow.default_effort with Gap_synth.Flow.tilos_moves = 0 } in
  let nl = (Gap_synth.Flow.run ~lib:(Lazy.force lib) ~effort ~name:"pipe4" g).Gap_synth.Flow.netlist in
  ignore (Gap_retime.Pipeline.pipeline ~stages:2 nl);
  let src = Verilog.write nl in
  let nl2 = Verilog.read ~lib:(Lazy.force lib) src in
  Alcotest.(check int) "flop count preserved"
    (List.length (Netlist.flops nl))
    (List.length (Netlist.flops nl2));
  (* sequential equivalence over a short random stream *)
  let rng = Gap_util.Rng.create ~seed:8L () in
  let n = Netlist.num_inputs nl in
  let stream = List.init 20 (fun _ -> Array.init n (fun _ -> Gap_util.Rng.bool rng)) in
  Alcotest.(check bool) "sequential behaviour preserved" true
    (Sim.run nl stream = Sim.run nl2 stream)

let test_roundtrip_constants () =
  let lib = Lazy.force lib in
  let nl = Netlist.create ~lib "consts" in
  let a = Netlist.add_input nl "a" in
  let one = Netlist.add_const nl true in
  let cell = Option.get (Library.find lib ~base:"AND2" ~drive:1.) in
  let inst = Netlist.add_cell nl cell [| a; one |] in
  ignore (Netlist.set_output nl "y" (Netlist.out_net nl inst));
  ignore (roundtrip_equivalent ~vectors:4 nl)

let test_write_is_parsable_text () =
  let g = Gap_datapath.Comparator.comparator ~width:4 in
  let nl = Gap_synth.Mapper.map_aig ~lib:(Lazy.force lib) ~name:"cmp4" g in
  let src = Verilog.write nl in
  let contains sub =
    let n = String.length sub and m = String.length src in
    let rec go i = i + n <= m && (String.sub src i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "module header" true (contains "module cmp4");
  Alcotest.(check bool) "endmodule" true (contains "endmodule");
  Alcotest.(check bool) "named connections" true (contains ".Y(")

let test_reader_rejects_unknown_cell () =
  let src = "module m (a, y);\n input a;\n output y;\n FROB_X1 u0 (.A(a), .Y(y));\nendmodule\n" in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Verilog.read ~lib:(Lazy.force lib) src);
       false
     with Verilog.Parse_error _ -> true)

let test_reader_rejects_garbage () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Verilog.read ~lib:(Lazy.force lib) "module ( broken");
       false
     with Verilog.Parse_error _ -> true)

let test_reader_out_of_order_instances () =
  (* u1 uses u0's output but is declared first: the elaborator must iterate *)
  let src =
    "module m (a, y);\n\
     input a;\n output y;\n wire t;\n wire t2;\n\
     INV_X1 u1 (.A(t), .Y(t2));\n\
     INV_X1 u0 (.A(a), .Y(t));\n\
     assign y = t2;\n\
     endmodule\n"
  in
  let nl = Verilog.read ~lib:(Lazy.force lib) src in
  Alcotest.(check int) "two inverters" 2 (Netlist.num_instances nl);
  let o = Sim.eval nl (Sim.initial nl) [| true |] in
  Alcotest.(check bool) "double inversion" true o.(0)

let verilog_roundtrip_random =
  QCheck.Test.make ~name:"verilog roundtrip on random logic" ~count:8
    QCheck.(int_range 0 10000)
    (fun seed ->
      let g =
        Gap_datapath.Random_logic.generate ~seed:(Int64.of_int seed) ~inputs:8
          ~outputs:4 ~gates:80 ()
      in
      let nl = Gap_synth.Mapper.map_aig ~lib:(Lazy.force lib) g in
      let nl2 = Verilog.read ~lib:(Lazy.force lib) (Verilog.write nl) in
      let rng = Gap_util.Rng.create () in
      let ok = ref true in
      for _ = 1 to 60 do
        let ins = Array.init 8 (fun _ -> Gap_util.Rng.bool rng) in
        if Sim.eval nl (Sim.initial nl) ins <> Sim.eval nl2 (Sim.initial nl2) ins then
          ok := false
      done;
      !ok)

let test_pin_names () =
  Alcotest.(check string) "pin 0" "A" (Verilog.pin_name 0);
  Alcotest.(check string) "pin 3" "D" (Verilog.pin_name 3);
  (* bijective base-26: Z rolls over to AA, not BA *)
  Alcotest.(check string) "pin 25" "Z" (Verilog.pin_name 25);
  Alcotest.(check string) "pin 26" "AA" (Verilog.pin_name 26);
  Alcotest.(check string) "pin 27" "AB" (Verilog.pin_name 27);
  Alcotest.(check string) "pin 51" "AZ" (Verilog.pin_name 51);
  Alcotest.(check string) "pin 52" "BA" (Verilog.pin_name 52);
  Alcotest.(check string) "pin 701" "ZZ" (Verilog.pin_name 701);
  Alcotest.(check string) "pin 702" "AAA" (Verilog.pin_name 702);
  Alcotest.(check (option int)) "AA decodes" (Some 26) (Verilog.pin_index "AA");
  Alcotest.(check (option int)) "lowercase rejected" None (Verilog.pin_index "aa");
  Alcotest.(check (option int)) "empty rejected" None (Verilog.pin_index "");
  Alcotest.(check (option int)) "digits rejected" None (Verilog.pin_index "A1")

let pin_name_roundtrip =
  QCheck.Test.make ~name:"pin_name/pin_index round-trip" ~count:500
    QCheck.(int_range 0 100_000)
    (fun i -> Verilog.pin_index (Verilog.pin_name i) = Some i)

let test_reader_fuzz_no_crash () =
  (* byte-level mutations of valid Verilog must either parse or raise
     Parse_error — never escape with an unrelated exception *)
  let g = Gap_datapath.Adders.ripple_adder 4 in
  let nl = Gap_synth.Mapper.map_aig ~lib:(Lazy.force lib) ~name:"fuzz" g in
  let src = Verilog.write nl in
  let rng = Gap_util.Rng.create ~seed:99L () in
  let printable = "abyz01();.,_\"= " in
  for _ = 1 to 200 do
    let b = Bytes.of_string src in
    for _ = 1 to 1 + Gap_util.Rng.int rng 4 do
      let pos = Gap_util.Rng.int rng (Bytes.length b) in
      Bytes.set b pos printable.[Gap_util.Rng.int rng (String.length printable)]
    done;
    match Verilog.read ~lib:(Lazy.force lib) (Bytes.to_string b) with
    | (_ : Netlist.t) -> ()
    | exception Verilog.Parse_error _ -> ()
  done

let suite =
  [
    ("roundtrip adder", `Quick, test_roundtrip_adder);
    ("roundtrip preserves timing", `Quick, test_roundtrip_preserves_timing);
    ("roundtrip sequential", `Quick, test_roundtrip_sequential);
    ("roundtrip constants", `Quick, test_roundtrip_constants);
    ("writer output shape", `Quick, test_write_is_parsable_text);
    ("reader rejects unknown cell", `Quick, test_reader_rejects_unknown_cell);
    ("reader rejects garbage", `Quick, test_reader_rejects_garbage);
    ("reader handles forward refs", `Quick, test_reader_out_of_order_instances);
    ("pin names", `Quick, test_pin_names);
    QCheck_alcotest.to_alcotest pin_name_roundtrip;
    QCheck_alcotest.to_alcotest verilog_roundtrip_random;
    ("reader fuzz: no crash", `Quick, test_reader_fuzz_no_crash);
  ]
